// arm2gc runs a secure two-party computation: one invocation per party,
// connected over TCP, or both parties in one process with -role local.
//
// One-shot, one connection per run (both sides pass identical program and
// layout flags — the binary is the public input p both parties know):
//
//	# terminal 1 (Alice, the garbler):
//	arm2gc -role garbler -listen :9000 -c prog.c -input 5,7 \
//	       -alice-words 2 -bob-words 2 -out-words 1
//	# terminal 2 (Bob, the evaluator):
//	arm2gc -role evaluator -connect localhost:9000 -c prog.c -input 3,4 \
//	       -alice-words 2 -bob-words 2 -out-words 1
//
// As a service, with negotiated sessions and connection reuse: the serve
// role registers the program under a name and garbles for any number of
// concurrent evaluator connections; the client role dials once and runs
// -sessions sequential sessions over the one connection:
//
//	# terminal 1 (the garbling server):
//	arm2gc -role serve -listen :9000 -c prog.c -program add -input 5,7 \
//	       -alice-words 2 -bob-words 2 -out-words 1
//	# terminal 2 (an evaluator client):
//	arm2gc -role client -connect localhost:9000 -c prog.c -program add \
//	       -input 3,4 -sessions 3 -alice-words 2 -bob-words 2 -out-words 1
//
// The serve role hardens for deployment: -registry hosts a whole program
// catalog from a JSON manifest, -tls-cert/-tls-key (plus -tls-ca for
// mutual TLS) encrypt the wire, -auth-token demands a bearer token, and
// -metrics exposes a Prometheus endpoint. The client side mirrors them
// with -tls/-tls-ca/-tls-cert/-tls-key and -auth-token. See `make
// serve-tls` for a working TLS + registry invocation with dev certs.
//
// The gateway role fronts a fleet of serve backends behind one listener:
// clients dial the gateway exactly as they would a single server, and
// each session is relayed to a backend chosen by consistent-hashing the
// program name (so a program's sessions keep hitting the same warm
// garble-ahead pool), spilling to the next ring node when the affinity
// backend is saturated or unhealthy. Backends are health-checked,
// ejected and re-admitted automatically; -gw-rate/-gw-burst shed
// per-peer overload with a Retry-After hint; -admin-token arms a live
// ops endpoint beside -metrics for registering/retiring programs and
// resizing the fleet without a restart:
//
//	arm2gc -role gateway -listen :9000 -backends localhost:9001,localhost:9002 \
//	       -metrics :9090 -admin-token sesame
//
// -garble-ahead N turns on the offline/online split: background workers
// keep N pre-garbled table streams ready per program (tune with
// -pool-mem-bytes / -pool-max-bytes / -pool-spill-dir / -pool-workers and
// per-program "garble_ahead" registry settings), so a session's online
// phase is OT plus frame I/O. Evaluating roles can add -read-ahead to
// buffer frames off the socket ahead of the cycle loop.
//
// Ctrl-C cancels a run cleanly, even while blocked on a hung peer; for
// the serve role it is a graceful shutdown (idle connections close,
// in-flight sessions drain).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"arm2gc"
	"arm2gc/internal/cli"
	"arm2gc/internal/gateway"
)

func main() {
	role := flag.String("role", "local", "garbler | evaluator | serve | client | gateway (front a fleet of serve backends) | local (both in-process)")
	listen := flag.String("listen", "", "garbler/serve: address to listen on")
	connect := flag.String("connect", "", "evaluator/client: garbler address to dial")
	cFile := flag.String("c", "", "MiniC source file (gc_main entry)")
	asmFile := flag.String("asm", "", "assembly source file (gc_main entry)")
	input := flag.String("input", "", "this party's input words, comma separated")
	otherInput := flag.String("other-input", "", "local role only: the other party's input")
	progName := flag.String("program", "", "serve/client: name the program is registered and proposed under (default: the source file name)")
	sessions := flag.Int("sessions", 1, "client: sequential sessions to run over the one connection")
	maxSessions := flag.Int("max-sessions", 0, "serve: concurrent-session limit (0 = unlimited)")
	registry := flag.String("registry", "", "serve: JSON program-registry manifest — host every listed program from one Engine (see internal/cli.RegistryManifest)")
	metricsAddr := flag.String("metrics", "", "serve: HTTP address exposing the Prometheus /metrics endpoint (e.g. :9090)")
	authToken := flag.String("auth-token", "", "serve: bearer token clients must present for the -c/-asm program; client: token sent with each proposal")
	garbleAhead := flag.Int("garble-ahead", 0, "serve: pre-garbled streams kept ready per program (0 = off); the online phase of a pooled session is OT + frame I/O")
	poolMem := flag.Int64("pool-mem-bytes", 0, "serve: garble-ahead bytes kept in memory (0 = default)")
	poolMax := flag.Int64("pool-max-bytes", 0, "serve: garble-ahead bytes overall, memory + spill (0 = default)")
	poolSpill := flag.String("pool-spill-dir", "", "serve: directory for garble-ahead overflow entries (empty = no spill)")
	poolWorkers := flag.Int("pool-workers", 0, "serve: background refill goroutines (0 = default)")
	poolAdaptive := flag.Bool("pool-adaptive", false, "serve: adapt per-program garble-ahead depth to demand (hit-rate/arrival EWMAs); -garble-ahead becomes the cap, -pool-min-depth the floor")
	poolMinDepth := flag.Int("pool-min-depth", 0, "serve: floor for -pool-adaptive depth (0 = 1)")
	layout := cli.LayoutFlags("; both parties must pass the same value — it is part of the public layout the session id covers")
	sessOpts := cli.SessionFlags()
	tlsOpts := cli.TLSFlags()
	gwOpts := cli.GatewayFlags()
	disasm := flag.Bool("S", false, "print the linked program and exit")
	dumpNetlist := flag.String("dump-netlist", "", "write the processor netlist (text format) to a file and exit")
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	eng := arm2gc.NewEngine()

	// A registry-driven server needs no -c/-asm program of its own, and a
	// gateway relays programs it never compiles; every other mode does.
	var prog *arm2gc.Program
	if *role != "gateway" && (*role != "serve" || *registry == "" || *cFile != "" || *asmFile != "") {
		var warnings []string
		prog, warnings = load(*cFile, *asmFile, layout())
		for _, w := range warnings {
			log.Printf("compiler warning: %s", w)
		}
	}
	if *disasm {
		if prog == nil {
			log.Fatal("-S needs -c or -asm")
		}
		fmt.Print(arm2gc.Disassemble(prog))
		return
	}
	if *dumpNetlist != "" {
		if prog == nil {
			log.Fatal("-dump-netlist needs -c or -asm")
		}
		dump(eng, prog, *dumpNetlist)
		return
	}

	name := *progName
	if name == "" && prog != nil {
		name = prog.Name
	}
	words := parseWords(*input)

	switch *role {
	case "gateway":
		if *listen == "" {
			log.Fatal("-role gateway needs -listen")
		}
		tlsCfg, err := tlsOpts.ServerConfig()
		if err != nil {
			log.Fatal(err)
		}
		cfg, err := gwOpts.Config(tlsCfg, log.Printf)
		if err != nil {
			log.Fatal(err)
		}
		g, err := gateway.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			log.Fatal(err)
		}
		defer ln.Close()
		stopOps := serveOps(ctx, *metricsAddr, func(mux *http.ServeMux) {
			mux.Handle("/metrics", g.MetricsHandler())
			mux.Handle("/admin/", http.StripPrefix("/admin", g.AdminHandler(gwOpts.AdminToken())))
		})
		mode := "plaintext"
		if tlsCfg != nil {
			mode = "TLS"
		}
		log.Printf("gateway fronting %d backends on %s (%s)", len(cfg.Backends), ln.Addr(), mode)
		if err := g.Serve(ctx, ln); err != nil {
			log.Fatal(err)
		}
		stopOps()
		m := g.Metrics()
		log.Printf("gateway shut down: %d proposals (%d shed, %d no-backend), %d ejections, %d re-admissions",
			m.Proposals, m.ShedRateLimit, m.ShedNoBackend, m.Ejections, m.Readmissions)
		return

	case "serve":
		if *listen == "" {
			log.Fatal("-role serve needs -listen")
		}
		tlsCfg, err := tlsOpts.ServerConfig()
		if err != nil {
			log.Fatal(err)
		}
		srvOpts := []arm2gc.ServerOption{
			arm2gc.WithMaxSessions(*maxSessions),
			arm2gc.WithServerLog(log.Printf),
		}
		if tlsCfg != nil {
			srvOpts = append(srvOpts, arm2gc.WithTLSConfig(tlsCfg))
		}
		if *garbleAhead > 0 {
			srvOpts = append(srvOpts, arm2gc.WithGarbleAhead(arm2gc.PoolConfig{
				Depth:         *garbleAhead,
				MemBytes:      *poolMem,
				MaxBytes:      *poolMax,
				SpillDir:      *poolSpill,
				Workers:       *poolWorkers,
				AdaptiveDepth: *poolAdaptive,
				MinDepth:      *poolMinDepth,
			}))
		}
		srv := arm2gc.NewServer(eng, srvOpts...)
		if prog != nil {
			opts, err := sessOpts.Options(false)
			if err != nil {
				log.Fatal(err)
			}
			opts = append(opts, arm2gc.WithGarblerInput(words))
			if *authToken != "" {
				opts = append(opts, arm2gc.WithAuthToken(*authToken))
			}
			if err := srv.Register(name, prog, opts...); err != nil {
				log.Fatal(err)
			}
			log.Printf("registered program %q", name)
		}
		if *registry != "" {
			entries, err := cli.LoadRegistry(*registry, layout())
			if err != nil {
				log.Fatal(err)
			}
			for _, e := range entries {
				for _, w := range e.Warnings {
					log.Printf("compiler warning (%s): %s", e.Name, w)
				}
				if err := srv.Register(e.Name, e.Program, e.Options...); err != nil {
					log.Fatal(err)
				}
				log.Printf("registered program %q from %s", e.Name, *registry)
			}
		}
		if *garbleAhead > 0 {
			if err := srv.WarmGarbleAhead(ctx); err != nil {
				log.Fatal(err)
			}
			log.Printf("garble-ahead pool warmed (%d streams ready)", srv.Metrics().GarbleAhead.Ready)
		}
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			log.Fatal(err)
		}
		defer ln.Close()
		stopMetrics := serveMetrics(ctx, srv, *metricsAddr)
		mode := "plaintext"
		if tlsCfg != nil {
			mode = "TLS"
		}
		log.Printf("serving on %s (%s)", ln.Addr(), mode)
		if err := srv.Serve(ctx, ln); err != nil {
			log.Fatal(err)
		}
		stopMetrics()
		m := srv.Metrics()
		log.Printf("shut down: %d sessions served, %d rejected, %d failed (%d B in, %d B out)",
			m.SessionsServed, m.SessionsRejected, m.SessionsFailed, m.BytesRead, m.BytesWritten)
		return

	case "client":
		if *connect == "" {
			log.Fatal("-role client needs -connect")
		}
		opts, err := sessOpts.Options(true)
		if err != nil {
			log.Fatal(err)
		}
		if *authToken != "" {
			opts = append(opts, arm2gc.WithAuthToken(*authToken))
		}
		tlsCfg, err := tlsOpts.ClientConfig()
		if err != nil {
			log.Fatal(err)
		}
		clOpts := []arm2gc.ClientOption{arm2gc.WithClientEngine(eng)}
		if tlsCfg != nil {
			clOpts = append(clOpts, arm2gc.WithDialTLS(tlsCfg))
		}
		cl, err := arm2gc.Dial(ctx, *connect, clOpts...)
		if err != nil {
			log.Fatal(err)
		}
		defer cl.Close()
		if err := cl.Register(name, prog); err != nil {
			log.Fatal(err)
		}
		for i := 0; i < *sessions; i++ {
			info, err := cl.Evaluate(ctx, name, words, opts...)
			if err != nil {
				var rej *arm2gc.RejectedError
				if errors.As(err, &rej) {
					log.Fatalf("server rejected the session: %s", rej.Reason)
				}
				log.Fatal(err)
			}
			fmt.Printf("session %d/%d: ", i+1, *sessions)
			report(info)
		}
		return
	}

	opts, err := sessOpts.Options(false)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := eng.Session(prog, opts...)
	if err != nil {
		log.Fatal(err)
	}

	var info *arm2gc.RunInfo
	switch *role {
	case "local":
		info, err = sess.Run(ctx, words, parseWords(*otherInput))
	case "garbler":
		if *listen == "" {
			log.Fatal("-role garbler needs -listen")
		}
		ln, lerr := net.Listen("tcp", *listen)
		if lerr != nil {
			log.Fatal(lerr)
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "garbler listening on %s...\n", ln.Addr())
		conn, aerr := acceptCtx(ctx, ln)
		if aerr != nil {
			log.Fatal(aerr)
		}
		defer conn.Close()
		info, err = sess.Garble(ctx, conn, words)
	case "evaluator":
		if *connect == "" {
			log.Fatal("-role evaluator needs -connect")
		}
		var d net.Dialer
		conn, derr := d.DialContext(ctx, "tcp", *connect)
		if derr != nil {
			log.Fatal(derr)
		}
		defer conn.Close()
		info, err = sess.Evaluate(ctx, conn, words)
	default:
		log.Fatalf("unknown role %q", *role)
	}
	if err != nil {
		log.Fatal(err)
	}
	report(info)
}

// serveMetrics exposes srv's Prometheus endpoint on addr ("" disables);
// the returned function waits for the HTTP server to stop.
func serveMetrics(ctx context.Context, srv *arm2gc.Server, addr string) (stop func()) {
	return serveOps(ctx, addr, func(mux *http.ServeMux) {
		mux.Handle("/metrics", srv.MetricsHandler())
	})
}

// serveOps runs the operator HTTP endpoint on addr ("" disables),
// letting the caller mount its handlers; the returned function waits
// for the HTTP server to stop.
func serveOps(ctx context.Context, addr string, mount func(mux *http.ServeMux)) (stop func()) {
	if addr == "" {
		return func() {}
	}
	mux := http.NewServeMux()
	mount(mux)
	hs := &http.Server{Addr: addr, Handler: mux}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Printf("metrics endpoint: %v", err)
		}
	}()
	go func() {
		<-ctx.Done()
		_ = hs.Close() // shutdown teardown; the server's exit error is reported elsewhere
	}()
	log.Printf("metrics on http://%s/metrics", addr)
	return func() { <-done }
}

// report prints a run's outcome in the tool's standard shape.
func report(info *arm2gc.RunInfo) {
	if info.Outputs != nil {
		fmt.Printf("output:")
		for _, w := range info.Outputs {
			fmt.Printf(" %d", w)
		}
		fmt.Println()
	} else {
		fmt.Println("output withheld from this party (-output-mode)")
	}
	fmt.Printf("cycles: %d  garbled tables: %d  (conventional GC: %d)\n",
		info.Cycles, info.GarbledTables, info.Conventional)
	if info.TableFrames > 0 {
		fmt.Printf("table frames: %d\n", info.TableFrames)
	}
}

// dump writes the processor netlist and its composition report.
func dump(eng *arm2gc.Engine, prog *arm2gc.Program, path string) {
	m, err := eng.Machine(prog.Layout)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := m.WriteNetlist(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	st := m.Stats()
	fmt.Printf("netlist written to %s: %d gates (%d non-XOR), %d flip-flops\n",
		path, st.Gates, st.NonXOR, st.DFFs)
}

// acceptCtx is Accept with cancellation: Ctrl-C while waiting for the
// evaluator to dial closes the listener instead of hanging.
func acceptCtx(ctx context.Context, ln net.Listener) (net.Conn, error) {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			_ = ln.Close() // unblocks Accept; the accept loop reports the real error
		case <-done:
		}
	}()
	conn, err := ln.Accept()
	if err != nil && ctx.Err() != nil {
		return nil, ctx.Err()
	}
	return conn, err
}

func load(cFile, asmFile string, l arm2gc.Layout) (*arm2gc.Program, []string) {
	switch {
	case cFile != "":
		src, err := os.ReadFile(cFile)
		if err != nil {
			log.Fatal(err)
		}
		p, warnings, err := arm2gc.CompileC(cFile, string(src), l)
		if err != nil {
			log.Fatal(err)
		}
		return p, warnings
	case asmFile != "":
		src, err := os.ReadFile(asmFile)
		if err != nil {
			log.Fatal(err)
		}
		p, err := arm2gc.Assemble(asmFile, string(src), l)
		if err != nil {
			log.Fatal(err)
		}
		return p, nil
	}
	log.Fatal("pass -c prog.c or -asm prog.s")
	return nil, nil
}

func parseWords(s string) []uint32 {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []uint32
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(f), 0, 64)
		if err != nil {
			log.Fatalf("bad input word %q: %v", f, err)
		}
		out = append(out, uint32(v))
	}
	return out
}
