// arm2gc runs a secure two-party computation: one invocation per party,
// connected over TCP, or both parties in one process with -role local.
//
//	# terminal 1 (Alice, the garbler):
//	arm2gc -role garbler -listen :9000 -c prog.c -input 5,7 \
//	       -alice-words 2 -bob-words 2 -out-words 1
//	# terminal 2 (Bob, the evaluator):
//	arm2gc -role evaluator -connect localhost:9000 -c prog.c -input 3,4 \
//	       -alice-words 2 -bob-words 2 -out-words 1
//
// prog.c defines gc_main(const int *a, const int *b, int *c); both sides
// must pass identical program and layout flags (the binary is the public
// input p both parties know). Ctrl-C cancels a run cleanly, even while
// blocked on a hung peer.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"arm2gc"
	"arm2gc/internal/cli"
)

func main() {
	role := flag.String("role", "local", "garbler | evaluator | local (both in-process)")
	listen := flag.String("listen", "", "garbler: address to listen on")
	connect := flag.String("connect", "", "evaluator: garbler address to dial")
	cFile := flag.String("c", "", "MiniC source file (gc_main entry)")
	asmFile := flag.String("asm", "", "assembly source file (gc_main entry)")
	input := flag.String("input", "", "this party's input words, comma separated")
	otherInput := flag.String("other-input", "", "local role only: the other party's input")
	layout := cli.LayoutFlags("; both parties must pass the same value — it is part of the public layout the session id covers")
	maxCycles := flag.Int("max-cycles", 1_000_000, "cycle budget")
	cycleBatch := flag.Int("cycle-batch", 1, "cycles of garbled tables per network frame (both parties must agree)")
	outputMode := flag.String("output-mode", "both", "who learns the outputs: both | garbler | evaluator (both parties must agree)")
	disasm := flag.Bool("S", false, "print the linked program and exit")
	dumpNetlist := flag.String("dump-netlist", "", "write the processor netlist (text format) to a file and exit")
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	prog, warnings := load(*cFile, *asmFile, layout())
	for _, w := range warnings {
		log.Printf("compiler warning: %s", w)
	}
	if *disasm {
		fmt.Print(arm2gc.Disassemble(prog))
		return
	}

	mode, err := parseOutputMode(*outputMode)
	if err != nil {
		log.Fatal(err)
	}
	eng := arm2gc.NewEngine()
	if *dumpNetlist != "" {
		m, err := eng.Machine(prog.Layout)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*dumpNetlist)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.WriteNetlist(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		st := m.Stats()
		fmt.Printf("netlist written to %s: %d gates (%d non-XOR), %d flip-flops\n",
			*dumpNetlist, st.Gates, st.NonXOR, st.DFFs)
		return
	}

	sess, err := eng.Session(prog,
		arm2gc.WithMaxCycles(*maxCycles),
		arm2gc.WithCycleBatch(*cycleBatch),
		arm2gc.WithOutputMode(mode))
	if err != nil {
		log.Fatal(err)
	}

	words := parseWords(*input)
	var info *arm2gc.RunInfo
	switch *role {
	case "local":
		info, err = sess.Run(ctx, words, parseWords(*otherInput))
	case "garbler":
		if *listen == "" {
			log.Fatal("-role garbler needs -listen")
		}
		ln, lerr := net.Listen("tcp", *listen)
		if lerr != nil {
			log.Fatal(lerr)
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "garbler listening on %s...\n", ln.Addr())
		conn, aerr := acceptCtx(ctx, ln)
		if aerr != nil {
			log.Fatal(aerr)
		}
		defer conn.Close()
		info, err = sess.Garble(ctx, conn, words)
	case "evaluator":
		if *connect == "" {
			log.Fatal("-role evaluator needs -connect")
		}
		var d net.Dialer
		conn, derr := d.DialContext(ctx, "tcp", *connect)
		if derr != nil {
			log.Fatal(derr)
		}
		defer conn.Close()
		info, err = sess.Evaluate(ctx, conn, words)
	default:
		log.Fatalf("unknown role %q", *role)
	}
	if err != nil {
		log.Fatal(err)
	}

	if info.Outputs != nil {
		fmt.Printf("output:")
		for _, w := range info.Outputs {
			fmt.Printf(" %d", w)
		}
		fmt.Println()
	} else {
		fmt.Printf("output withheld from this party (-output-mode %s)\n", *outputMode)
	}
	fmt.Printf("cycles: %d  garbled tables: %d  (conventional GC: %d)\n",
		info.Cycles, info.GarbledTables, info.Conventional)
	if info.TableFrames > 0 {
		fmt.Printf("table frames: %d (cycle batch %d)\n", info.TableFrames, *cycleBatch)
	}
}

// acceptCtx is Accept with cancellation: Ctrl-C while waiting for the
// evaluator to dial closes the listener instead of hanging.
func acceptCtx(ctx context.Context, ln net.Listener) (net.Conn, error) {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			ln.Close()
		case <-done:
		}
	}()
	conn, err := ln.Accept()
	if err != nil && ctx.Err() != nil {
		return nil, ctx.Err()
	}
	return conn, err
}

func parseOutputMode(s string) (arm2gc.OutputMode, error) {
	switch s {
	case "both":
		return arm2gc.OutputBoth, nil
	case "garbler":
		return arm2gc.OutputGarblerOnly, nil
	case "evaluator":
		return arm2gc.OutputEvaluatorOnly, nil
	}
	return 0, fmt.Errorf("unknown -output-mode %q (want both, garbler or evaluator)", s)
}

func load(cFile, asmFile string, l arm2gc.Layout) (*arm2gc.Program, []string) {
	switch {
	case cFile != "":
		src, err := os.ReadFile(cFile)
		if err != nil {
			log.Fatal(err)
		}
		p, warnings, err := arm2gc.CompileC(cFile, string(src), l)
		if err != nil {
			log.Fatal(err)
		}
		return p, warnings
	case asmFile != "":
		src, err := os.ReadFile(asmFile)
		if err != nil {
			log.Fatal(err)
		}
		p, err := arm2gc.Assemble(asmFile, string(src), l)
		if err != nil {
			log.Fatal(err)
		}
		return p, nil
	}
	log.Fatal("pass -c prog.c or -asm prog.s")
	return nil, nil
}

func parseWords(s string) []uint32 {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []uint32
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(f), 0, 64)
		if err != nil {
			log.Fatalf("bad input word %q: %v", f, err)
		}
		out = append(out, uint32(v))
	}
	return out
}
