// arm2gc runs a secure two-party computation: one invocation per party,
// connected over TCP, or both parties in one process with -role local.
//
//	# terminal 1 (Alice, the garbler):
//	arm2gc -role garbler -listen :9000 -c prog.c -input 5,7 \
//	       -alice-words 2 -bob-words 2 -out-words 1
//	# terminal 2 (Bob, the evaluator):
//	arm2gc -role evaluator -connect localhost:9000 -c prog.c -input 3,4 \
//	       -alice-words 2 -bob-words 2 -out-words 1
//
// prog.c defines gc_main(const int *a, const int *b, int *c); both sides
// must pass identical program and layout flags (the binary is the public
// input p both parties know).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strconv"
	"strings"

	"arm2gc"
)

func main() {
	role := flag.String("role", "local", "garbler | evaluator | local (both in-process)")
	listen := flag.String("listen", "", "garbler: address to listen on")
	connect := flag.String("connect", "", "evaluator: garbler address to dial")
	cFile := flag.String("c", "", "MiniC source file (gc_main entry)")
	asmFile := flag.String("asm", "", "assembly source file (gc_main entry)")
	input := flag.String("input", "", "this party's input words, comma separated")
	otherInput := flag.String("other-input", "", "local role only: the other party's input")
	aliceWords := flag.Int("alice-words", 4, "size of Alice's input region (words)")
	bobWords := flag.Int("bob-words", 4, "size of Bob's input region (words)")
	outWords := flag.Int("out-words", 4, "size of the output region (words)")
	scratch := flag.Int("scratch", 64, "scratch+stack region (words)")
	maxCycles := flag.Int("max-cycles", 1_000_000, "cycle budget")
	disasm := flag.Bool("S", false, "print the linked program and exit")
	dumpNetlist := flag.String("dump-netlist", "", "write the processor netlist (text format) to a file and exit")
	flag.Parse()

	l := arm2gc.Layout{
		IMemWords: 64, AliceWords: *aliceWords, BobWords: *bobWords,
		OutWords: *outWords, ScratchWords: *scratch,
	}
	prog, warnings := load(*cFile, *asmFile, l)
	for _, w := range warnings {
		log.Printf("compiler warning: %s", w)
	}
	if *disasm {
		fmt.Print(arm2gc.Disassemble(prog))
		return
	}

	words := parseWords(*input)
	m, err := arm2gc.NewMachine(prog.Layout)
	if err != nil {
		log.Fatal(err)
	}
	if *dumpNetlist != "" {
		f, err := os.Create(*dumpNetlist)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.WriteNetlist(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		st := m.Stats()
		fmt.Printf("netlist written to %s: %d gates (%d non-XOR), %d flip-flops\n",
			*dumpNetlist, st.Gates, st.NonXOR, st.DFFs)
		return
	}

	var info *arm2gc.RunInfo
	switch *role {
	case "local":
		info, err = m.Run(prog, words, parseWords(*otherInput), *maxCycles)
	case "garbler":
		if *listen == "" {
			log.Fatal("-role garbler needs -listen")
		}
		ln, lerr := net.Listen("tcp", *listen)
		if lerr != nil {
			log.Fatal(lerr)
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "garbler listening on %s...\n", ln.Addr())
		conn, aerr := ln.Accept()
		if aerr != nil {
			log.Fatal(aerr)
		}
		defer conn.Close()
		info, err = m.Garble(conn, prog, words, *maxCycles)
	case "evaluator":
		if *connect == "" {
			log.Fatal("-role evaluator needs -connect")
		}
		conn, derr := net.Dial("tcp", *connect)
		if derr != nil {
			log.Fatal(derr)
		}
		defer conn.Close()
		info, err = m.Evaluate(conn, prog, words, *maxCycles)
	default:
		log.Fatalf("unknown role %q", *role)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("output:")
	for _, w := range info.Outputs {
		fmt.Printf(" %d", w)
	}
	fmt.Println()
	fmt.Printf("cycles: %d  garbled tables: %d  (conventional GC: %d)\n",
		info.Cycles, info.GarbledTables, info.Conventional)
}

func load(cFile, asmFile string, l arm2gc.Layout) (*arm2gc.Program, []string) {
	switch {
	case cFile != "":
		src, err := os.ReadFile(cFile)
		if err != nil {
			log.Fatal(err)
		}
		p, warnings, err := arm2gc.CompileC(cFile, string(src), l)
		if err != nil {
			log.Fatal(err)
		}
		return p, warnings
	case asmFile != "":
		src, err := os.ReadFile(asmFile)
		if err != nil {
			log.Fatal(err)
		}
		p, err := arm2gc.Assemble(asmFile, string(src), l)
		if err != nil {
			log.Fatal(err)
		}
		return p, nil
	}
	log.Fatal("pass -c prog.c or -asm prog.s")
	return nil, nil
}

func parseWords(s string) []uint32 {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []uint32
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(f), 0, 64)
		if err != nil {
			log.Fatalf("bad input word %q: %v", f, err)
		}
		out = append(out, uint32(v))
	}
	return out
}
