// arm2gc-vet runs the repository's static-analysis suite: the custom
// go/analysis-style analyzers over the module's source, or (with
// -netlist) the netlist structural linter over a built processor
// circuit.
//
//	arm2gc-vet                         # analyze every module package
//	arm2gc-vet ./internal/proto        # analyze one package directory
//	arm2gc-vet -netlist prog.s         # assemble, build, lint the netlist
//	arm2gc-vet -netlist prog.c         # minicc-compile, build, lint
//
// Exit status 1 when any finding survives suppression; the output format
// is the go vet convention (file:line:col: message [analyzer]) so
// editors and CI annotate it natively.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"arm2gc"
	"arm2gc/internal/analysis"
	"arm2gc/internal/build"
	"arm2gc/internal/cli"
	"arm2gc/internal/cpu"
	"arm2gc/internal/obliv"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("arm2gc-vet: ")
	netlist := flag.String("netlist", "", "lint the processor netlist built for this program (.s or .c) instead of analyzing Go source")
	memBackend := flag.String("mem-backend", "auto", "netlist mode: oblivious data-memory backend (auto | scan | sqrt-oram)")
	expectNonXOR := flag.Int("expect-nonxor", -1, "netlist mode: fail unless the circuit has exactly this many non-XOR gates (cost-model golden; -1 disables)")
	layout := cli.LayoutFlags(" (netlist mode)")
	flag.Parse()

	if *netlist != "" {
		if err := lintNetlist(*netlist, layout(), *memBackend, *expectNonXOR); err != nil {
			log.Fatal(err)
		}
		return
	}
	analyzeGo(flag.Args())
}

// analyzeGo runs the analyzer suite over the module (no args) or over
// the packages rooted at the given directories.
func analyzeGo(args []string) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		log.Fatal(err)
	}
	l, err := analysis.NewLoader(root)
	if err != nil {
		log.Fatal(err)
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		log.Fatal(err)
	}
	if len(args) > 0 {
		keep, err := selectPackages(root, l.ModulePath, pkgs, args)
		if err != nil {
			log.Fatal(err)
		}
		pkgs = keep
	}
	diags, err := analysis.Run(analysis.Suite(), pkgs)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		log.Fatalf("%d finding(s)", len(diags))
	}
}

// selectPackages filters loaded packages down to the requested
// directories ("./..." and "." mean everything, matching go vet).
func selectPackages(root, modPath string, pkgs []*analysis.Package, args []string) ([]*analysis.Package, error) {
	want := map[string]bool{}
	all := false
	for _, a := range args {
		if a == "./..." || a == "." {
			all = true
			continue
		}
		abs, err := filepath.Abs(strings.TrimSuffix(a, "/..."))
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("%s is outside the module at %s", a, root)
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		want[ip] = true
	}
	if all {
		return pkgs, nil
	}
	var keep []*analysis.Package
	for _, p := range pkgs {
		// A named directory selects its whole subtree, go-vet style.
		for w := range want {
			if p.Path == w || strings.HasPrefix(p.Path, w+"/") {
				keep = append(keep, p)
				break
			}
		}
	}
	if len(keep) == 0 {
		return nil, fmt.Errorf("no module packages match %v", args)
	}
	return keep, nil
}

// lintNetlist builds the processor circuit a program would run on and
// runs the structural linter over it, including the memory backend's
// width self-check (via cpu.DebugLint inside BuildMem).
func lintNetlist(path string, l arm2gc.Layout, backend string, expectNonXOR int) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var prog *arm2gc.Program
	switch filepath.Ext(path) {
	case ".c":
		prog, _, err = arm2gc.CompileC(path, string(src), l)
	default:
		prog, err = arm2gc.Assemble(path, string(src), l)
	}
	if err != nil {
		return err
	}
	resolved, err := obliv.Config{Backend: backend}.Resolve(prog.Layout.DataWords())
	if err != nil {
		return err
	}
	cpu.DebugLint = true // BuildMem fails on backend width-check or lint errors
	c, err := cpu.BuildMem(prog.Layout, obliv.Config{Backend: resolved})
	if err != nil {
		return err
	}
	report := build.Lint(c.Circuit, build.LintOpts{CheckCost: expectNonXOR >= 0, ExpectNonXOR: expectNonXOR})
	st := c.Circuit.Stats()
	fmt.Printf("%s: %d gates (%d non-XOR), %d DFFs, backend %s\n",
		c.Circuit.Name, st.Gates, st.NonXOR, st.DFFs, c.Backend)
	for _, issue := range report.Issues {
		fmt.Println(" ", issue)
	}
	if n := report.Errors(); n > 0 {
		return fmt.Errorf("%d netlist lint error(s)", n)
	}
	fmt.Println("netlist clean")
	return nil
}
