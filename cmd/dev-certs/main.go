// Command dev-certs mints a throwaway TLS certificate set for local
// development: a self-signed CA plus server and client leaves (valid 24h,
// loopback + localhost only), written as PEM under -dir. It backs
// `make serve-tls`; nothing it produces is suitable for production.
//
//	dev-certs -dir dev-certs
//	arm2gc -role serve  -listen :9000 -tls-cert dev-certs/server.pem \
//	       -tls-key dev-certs/server-key.pem -tls-ca dev-certs/ca.pem ...
//	arm2gc -role client -connect localhost:9000 -tls-ca dev-certs/ca.pem \
//	       -tls-cert dev-certs/client.pem -tls-key dev-certs/client-key.pem ...
package main

import (
	"flag"
	"fmt"
	"log"

	"arm2gc/internal/devcert"
)

func main() {
	dir := flag.String("dir", "dev-certs", "directory to write the PEM set into")
	flag.Parse()
	if err := devcert.WriteFiles(*dir); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote ca.pem, server.pem/server-key.pem, client.pem/client-key.pem to %s (valid 24h, dev only)\n", *dir)
}
