package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: arm2gc
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSchedulerCycle        	     300	    186843 ns/op	     13567 gates/cycle	     166 B/op	       0 allocs/op
BenchmarkParallelCycle/serial-4         	      50	    406459 ns/op	         0.6200 tables/cycle	     125 B/op	       5 allocs/op
PASS
ok  	arm2gc	0.187s
`

func parseSample(t *testing.T, s string) *Report {
	t.Helper()
	rep, err := parse(bufio.NewScanner(strings.NewReader(s)))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestParseBenchOutput(t *testing.T) {
	rep := parseSample(t, sample)
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("header parsed as %q/%q/%q", rep.GOOS, rep.GOARCH, rep.CPU)
	}
	if rep.GOMAXPROCS != 4 {
		t.Fatalf("gomaxprocs = %d, want 4 (from the -4 suffix)", rep.GOMAXPROCS)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkSchedulerCycle" || b.Runs != 300 {
		t.Fatalf("first benchmark parsed as %+v", b)
	}
	for metric, want := range map[string]float64{
		"ns/op": 186843, "gates/cycle": 13567, "B/op": 166, "allocs/op": 0,
	} {
		if got := b.Metrics[metric]; got != want {
			t.Errorf("%s = %v, want %v", metric, got, want)
		}
	}
	if got := rep.Benchmarks[1].Metrics["tables/cycle"]; got != 0.62 {
		t.Errorf("tables/cycle = %v, want 0.62", got)
	}
}

func TestCompareGatesRegressions(t *testing.T) {
	base := parseSample(t, sample)
	cur := parseSample(t, sample)
	if n := compare(base, cur, 1.25); n != 0 {
		t.Fatalf("identical reports produced %d regressions", n)
	}
	cur = parseSample(t, sample)
	cur.Benchmarks[0].Metrics["ns/op"] *= 1.5
	if n := compare(base, cur, 1.25); n != 1 {
		t.Fatalf("50%% ns/op regression produced %d findings, want 1", n)
	}
	// Different hardware: ns/op is not gated, machine-independent metrics are.
	cur = parseSample(t, sample)
	cur.CPU = "something else"
	cur.Benchmarks[0].Metrics["ns/op"] *= 10
	if n := compare(base, cur, 1.25); n != 0 {
		t.Fatalf("cross-hardware ns/op gated: %d regressions", n)
	}
	cur.Benchmarks[0].Metrics["allocs/op"] = 50
	if n := compare(base, cur, 1.25); n != 1 {
		t.Fatalf("cross-hardware allocs/op regression produced %d findings, want 1", n)
	}
	// A benchmark that vanished from the current report is a failure, not
	// a free pass.
	cur = parseSample(t, sample)
	cur.Benchmarks = cur.Benchmarks[:1]
	if n := compare(base, cur, 1.25); n != 1 {
		t.Fatalf("missing benchmark produced %d findings, want 1", n)
	}
}

// TestCompareDegradesGracefully covers the imperfect-baseline cases:
// reports without a hardware fingerprint, metrics present on only one
// side, and nil metric maps must neither panic nor misjudge.
func TestCompareDegradesGracefully(t *testing.T) {
	stripFP := func(r *Report) *Report {
		r.GOOS, r.GOARCH, r.CPU, r.GOMAXPROCS = "", "", "", 0
		return r
	}
	cases := []struct {
		name    string
		base    func() *Report
		cur     func() *Report
		wantReg int
	}{
		{
			// Two blank fingerprints compare equal as strings; ns/op must
			// still not be gated — the machines are unknown.
			name: "both fingerprints missing, wall-clock regression ignored",
			base: func() *Report { return stripFP(parseSample(t, sample)) },
			cur: func() *Report {
				r := stripFP(parseSample(t, sample))
				r.Benchmarks[0].Metrics["ns/op"] *= 100
				return r
			},
			wantReg: 0,
		},
		{
			name: "baseline fingerprint missing, machine-independent still gated",
			base: func() *Report { return stripFP(parseSample(t, sample)) },
			cur: func() *Report {
				r := parseSample(t, sample)
				r.Benchmarks[0].Metrics["allocs/op"] = 50
				return r
			},
			wantReg: 1,
		},
		{
			name: "metric only in baseline is skipped, not misjudged",
			base: func() *Report {
				r := parseSample(t, sample)
				r.Benchmarks[0].Metrics["tables/cycle"] = 5
				return r
			},
			cur:     func() *Report { return parseSample(t, sample) },
			wantReg: 0,
		},
		{
			name: "metric only in current is skipped",
			base: func() *Report { return parseSample(t, sample) },
			cur: func() *Report {
				r := parseSample(t, sample)
				r.Benchmarks[0].Metrics["bytes/cycle"] = 1e9
				return r
			},
			wantReg: 0,
		},
		{
			name: "nil metrics map in baseline",
			base: func() *Report {
				r := parseSample(t, sample)
				r.Benchmarks[0].Metrics = nil
				return r
			},
			cur:     func() *Report { return parseSample(t, sample) },
			wantReg: 0,
		},
		{
			name: "nil metrics map in current",
			base: func() *Report { return parseSample(t, sample) },
			cur: func() *Report {
				r := parseSample(t, sample)
				r.Benchmarks[0].Metrics = nil
				return r
			},
			wantReg: 0,
		},
		{
			name: "real regression still caught alongside one-sided metrics",
			base: func() *Report {
				r := parseSample(t, sample)
				r.Benchmarks[0].Metrics["baseline-only"] = 1
				return r
			},
			cur: func() *Report {
				r := parseSample(t, sample)
				r.Benchmarks[0].Metrics["allocs/op"] = 50
				r.Benchmarks[0].Metrics["current-only"] = 1
				return r
			},
			wantReg: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if n := compare(tc.base(), tc.cur(), 1.25); n != tc.wantReg {
				t.Fatalf("compare reported %d regressions, want %d", n, tc.wantReg)
			}
		})
	}
}
