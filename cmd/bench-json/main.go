// Command bench-json turns `go test -bench` output into a machine-readable
// JSON report and compares two reports for regressions — the engine behind
// `make bench-json` and the CI bench-regression job.
//
// Parse mode (default) reads benchmark output on stdin and writes JSON:
//
//	go test -run '^$' -bench . -benchmem . | bench-json -out BENCH_2026-07-29.json
//
// Compare mode exits non-zero when the current report regresses past the
// threshold against a baseline:
//
//	bench-json -compare BENCH_baseline.json BENCH_2026-07-29.json -threshold 1.25
//
// Wall-clock numbers are only comparable on like hardware, so ns/op is
// gated only when the two reports carry the same hardware fingerprint
// (goos/goarch/cpu/gomaxprocs). Across different machines the comparison
// falls back to the machine-independent metrics — allocs/op and the
// engine's own counters (tables/cycle, gates/cycle, bytes/cycle) — which
// are exact properties of the code, not the host.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Report is the emitted JSON document.
type Report struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPU        string      `json:"cpu"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one benchmark result; Metrics holds every per-op value
// (ns/op, B/op, allocs/op and any b.ReportMetric counter).
type Benchmark struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// fingerprint identifies the hardware a report was measured on.
func (r *Report) fingerprint() string {
	return fmt.Sprintf("%s/%s/%s/p%d", r.GOOS, r.GOARCH, r.CPU, r.GOMAXPROCS)
}

// hasFingerprint reports whether the hardware fields are populated.
// Hand-edited or legacy baselines may lack them; such a report must never
// be treated as "same hardware" (two blank fingerprints compare equal),
// or wall-clock metrics would be gated across unknown machines.
func (r *Report) hasFingerprint() bool {
	return r.GOOS != "" && r.GOARCH != "" && r.CPU != "" && r.GOMAXPROCS > 0
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+(.*)$`)

// machineIndependent lists the metrics that stay comparable across hosts.
func machineIndependent(name string) bool {
	switch name {
	case "allocs/op", "tables/cycle", "gates/cycle", "bytes/cycle", "tables/access":
		return true
	}
	return false
}

func parse(r *bufio.Scanner) (*Report, error) {
	rep := &Report{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for r.Scan() {
		line := strings.TrimRight(r.Text(), "\r\n")
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		runs, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil {
			continue
		}
		if m[2] != "" {
			if p, err := strconv.Atoi(m[2]); err == nil {
				rep.GOMAXPROCS = p
			}
		}
		b := Benchmark{Name: m[1], Runs: runs, Metrics: map[string]float64{}}
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			b.Metrics[fields[i+1]] = v
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found on stdin")
	}
	return rep, nil
}

func load(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// compare reports regressions of cur against base; returns the number of
// metrics that regressed past threshold. It degrades gracefully on
// imperfect baselines: a report without a hardware fingerprint is never
// treated as same-hardware, and a metric present on only one side is
// skipped with a warning instead of silently ignored (current-side gap)
// or silently passed (baseline-side gap).
func compare(base, cur *Report, threshold float64) int {
	sameHW := base.fingerprint() == cur.fingerprint()
	switch {
	case !base.hasFingerprint() || !cur.hasFingerprint():
		// Two blank fingerprints compare equal; that must not gate
		// wall-clock numbers across machines nobody identified.
		sameHW = false
		fmt.Printf("warning: hardware fingerprint missing (baseline %q, current %q); gating only machine-independent metrics\n",
			base.fingerprint(), cur.fingerprint())
	case !sameHW:
		fmt.Printf("note: hardware differs (baseline %s, current %s); gating only machine-independent metrics\n",
			base.fingerprint(), cur.fingerprint())
	}
	baseBy := map[string]Benchmark{}
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	curBy := map[string]Benchmark{}
	for _, b := range cur.Benchmarks {
		curBy[b.Name] = b
	}
	regressions := 0
	// A baseline entry with no current counterpart is itself a gate
	// failure: deleting or renaming a regressed benchmark must not read
	// as "no regressions". A baseline metric missing from the current
	// entry only warns — metric sets legitimately evolve — but never
	// silently: the operator sees what stopped being gated.
	for _, b := range base.Benchmarks {
		cb, ok := curBy[b.Name]
		if !ok {
			fmt.Printf("FAIL: %s present in the baseline but missing from the current report\n", b.Name)
			regressions++
			continue
		}
		for metric := range b.Metrics {
			if _, ok := cb.Metrics[metric]; !ok {
				fmt.Printf("warning: %s %s present in the baseline but not the current report; skipping\n", b.Name, metric)
			}
		}
	}
	for _, b := range cur.Benchmarks {
		bb, ok := baseBy[b.Name]
		if !ok {
			fmt.Printf("new:  %s (no baseline entry)\n", b.Name)
			continue
		}
		for metric, v := range b.Metrics {
			old, ok := bb.Metrics[metric]
			if !ok {
				fmt.Printf("warning: %s %s has no baseline value; skipping\n", b.Name, metric)
				continue
			}
			if !sameHW && !machineIndependent(metric) {
				continue
			}
			// Tiny absolute slack keeps 0→1-style jitter in counters
			// (an alloc amortized over b.N) from tripping ratio gates.
			limit := old*threshold + 1
			if v > limit {
				fmt.Printf("FAIL: %s %s = %.4g, baseline %.4g (limit %.4g)\n", b.Name, metric, v, old, limit)
				regressions++
			} else {
				fmt.Printf("ok:   %s %s = %.4g (baseline %.4g)\n", b.Name, metric, v, old)
			}
		}
	}
	return regressions
}

func main() {
	comparePair := flag.String("compare", "", "compare mode: 'baseline.json,current.json' (or pass the two paths as arguments after -compare baseline.json)")
	threshold := flag.Float64("threshold", 1.25, "regression threshold as a ratio (1.25 = +25%)")
	out := flag.String("out", "", "parse mode: write the JSON report here instead of stdout")
	flag.Parse()

	if *comparePair != "" {
		basePath := *comparePair
		curPath := ""
		if i := strings.IndexByte(basePath, ','); i >= 0 {
			basePath, curPath = basePath[:i], basePath[i+1:]
		} else if flag.NArg() == 1 {
			curPath = flag.Arg(0)
		}
		if curPath == "" {
			fmt.Fprintln(os.Stderr, "usage: bench-json -compare baseline.json current.json")
			os.Exit(2)
		}
		base, err := load(basePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cur, err := load(curPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if n := compare(base, cur, *threshold); n > 0 {
			fmt.Printf("%d benchmark metric(s) regressed beyond %.0f%%\n", n, (*threshold-1)*100)
			os.Exit(1)
		}
		fmt.Println("no benchmark regressions")
		return
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	rep, err := parse(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
		return
	}
	if _, err := os.Stdout.Write(enc); err != nil {
		fmt.Fprintf(os.Stderr, "bench-json: writing report: %v\n", err)
		os.Exit(2)
	}
}
