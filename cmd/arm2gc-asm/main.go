// arm2gc-asm assembles or disassembles garbled-processor programs.
//
//	arm2gc-asm prog.s           # hex words on stdout
//	arm2gc-asm -d prog.s        # assemble, then disassemble (round-trip view)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"arm2gc/internal/isa"
)

func main() {
	dis := flag.Bool("d", false, "disassemble after assembling")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: arm2gc-asm [-d] prog.s")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	words, err := isa.Assemble(string(src))
	if err != nil {
		log.Fatal(err)
	}
	if *dis {
		p := &isa.Program{Words: words}
		fmt.Print(p.Disassemble())
		return
	}
	for _, w := range words {
		fmt.Printf("%08x\n", w)
	}
}
