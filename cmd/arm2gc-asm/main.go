// arm2gc-asm assembles or disassembles garbled-processor programs.
//
//	arm2gc-asm prog.s           # hex words on stdout
//	arm2gc-asm -d prog.s        # assemble, then disassemble (round-trip view)
//	arm2gc-asm -cost prog.s     # link against a layout and price the
//	                            # program in garbled tables (no crypto)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"arm2gc"
	"arm2gc/internal/cli"
	"arm2gc/internal/isa"
)

func main() {
	dis := flag.Bool("d", false, "disassemble after assembling")
	cost := flag.Bool("cost", false, "link and report the SkipGate garbled-table cost")
	maxCycles := flag.Int("max-cycles", 1_000_000, "cost mode: cycle budget")
	layout := cli.LayoutFlags(" (cost mode)")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: arm2gc-asm [-d | -cost] prog.s")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}

	if *cost {
		prog, err := arm2gc.Assemble(flag.Arg(0), string(src), layout())
		if err != nil {
			log.Fatal(err)
		}
		if err := cli.PrintCost(context.Background(), prog, *maxCycles); err != nil {
			log.Fatal(err)
		}
		return
	}

	words, err := isa.Assemble(string(src))
	if err != nil {
		log.Fatal(err)
	}
	if *dis {
		p := &isa.Program{Words: words}
		fmt.Print(p.Disassemble())
		return
	}
	for _, w := range words {
		fmt.Printf("%08x\n", w)
	}
}
