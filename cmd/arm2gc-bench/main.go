// arm2gc-bench regenerates every table and figure of the paper's
// evaluation section against this implementation, printing the paper's
// values alongside the measured ones.
//
// Usage:
//
//	arm2gc-bench                # all tables and figures, small parameters
//	arm2gc-bench -big           # full paper parameter sets (minutes)
//	arm2gc-bench -table 4       # a single table (1-6, or "mips")
//	arm2gc-bench -figure 5      # a single figure (1, 2, 3, 5, 6)
//	arm2gc-bench -workload dijkstra8   # one workload, full crypto, via the Engine
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"arm2gc"
	"arm2gc/internal/bencher"
)

func main() {
	big := flag.Bool("big", false, "use the paper's full parameter sets (slow)")
	table := flag.String("table", "", "generate one table: 1..6 or mips")
	figure := flag.String("figure", "", "generate one figure: 1, 2, 3, 5, 6")
	workload := flag.String("workload", "", "run one named workload end-to-end (full crypto) on the garbled processor")
	flag.Parse()

	gens := map[string]func() (*bencher.Table, error){
		"1":    func() (*bencher.Table, error) { return bencher.Table1(*big) },
		"2":    func() (*bencher.Table, error) { return bencher.Table2(*big) },
		"3":    func() (*bencher.Table, error) { return bencher.Table3(*big) },
		"4":    func() (*bencher.Table, error) { return bencher.Table4(*big) },
		"5":    func() (*bencher.Table, error) { return bencher.Table5(*big) },
		"6":    bencher.Table6,
		"mips": bencher.MIPSTable,
		"f1":   bencher.Figure1,
		"f2":   bencher.Figure2,
		"f3":   bencher.Figure3,
		"f5":   bencher.Figure5,
		"f6":   bencher.Figure6,

		// Ablations for this implementation's own design decisions.
		"ablation-mux":   bencher.AblationMuxCell,
		"ablation-scan":  bencher.AblationObliviousScan,
		"ablation-zflag": bencher.AblationZFlag,
		"ablation-mem":   func() (*bencher.Table, error) { return bencher.AblationMemoryBackend(*big) },
	}

	run := func(key string) {
		g, ok := gens[key]
		if !ok {
			log.Fatalf("unknown experiment %q", key)
		}
		t, err := g()
		if err != nil {
			log.Fatalf("experiment %s: %v", key, err)
		}
		fmt.Println(t.Render())
	}

	switch {
	case *workload != "":
		runWorkload(*workload)
	case *table != "":
		run(*table)
	case *figure != "":
		run("f" + *figure)
	default:
		fmt.Fprintln(os.Stderr, "regenerating the full evaluation (use -big for the paper's largest parameters)...")
		for _, key := range []string{"1", "2", "3", "4", "5", "6", "mips", "f1", "f2", "f3", "f5", "f6", "ablation-mux", "ablation-scan", "ablation-zflag", "ablation-mem"} {
			run(key)
		}
	}
}

// runWorkload executes one named workload with real garbling through the
// root Engine API, cross-checked against native emulation. Ctrl-C aborts
// a long run cleanly.
func runWorkload(name string) {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	w, err := bencher.FindWorkload(name)
	if err != nil {
		names := ""
		for _, w := range bencher.AllWorkloads(true) {
			names += " " + w.Name
		}
		log.Fatalf("%v\navailable:%s", err, names)
	}
	prog, warnings, err := w.Program()
	if err != nil {
		log.Fatal(err)
	}
	for _, warn := range warnings {
		log.Printf("compiler warning: %s", warn)
	}
	info, err := arm2gc.DefaultEngine.Verify(ctx, prog, w.Alice, w.Bob, arm2gc.WithMaxCycles(50_000_000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: verified against native emulation\n", name)
	fmt.Printf("output:")
	for _, v := range info.Outputs {
		fmt.Printf(" %d", v)
	}
	fmt.Println()
	fmt.Printf("cycles: %d  garbled tables: %d  (conventional GC: %d, %.0fx saved)\n",
		info.Cycles, info.GarbledTables, info.Conventional,
		float64(info.Conventional)/float64(info.GarbledTables))
}
