// arm2gc-cc compiles MiniC to the garbled processor's assembly.
//
//	arm2gc-cc prog.c            # assembly on stdout
//	arm2gc-cc -cost prog.c      # link against a layout and price the
//	                            # program in garbled tables (no crypto)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"arm2gc"
	"arm2gc/internal/cli"
	"arm2gc/internal/minicc"
)

func main() {
	cost := flag.Bool("cost", false, "link and report the SkipGate garbled-table cost instead of printing assembly")
	maxCycles := flag.Int("max-cycles", 1_000_000, "cost mode: cycle budget")
	layout := cli.LayoutFlags(" (cost mode)")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: arm2gc-cc [-cost] prog.c")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}

	if *cost {
		prog, warnings, err := arm2gc.CompileC(flag.Arg(0), string(src), layout())
		if err != nil {
			log.Fatal(err)
		}
		for _, w := range warnings {
			fmt.Fprintf(os.Stderr, "warning: %s\n", w)
		}
		if err := cli.PrintCost(context.Background(), prog, *maxCycles); err != nil {
			log.Fatal(err)
		}
		return
	}

	res, err := minicc.Compile(string(src))
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range res.Warnings {
		fmt.Fprintf(os.Stderr, "warning: %s\n", w)
	}
	fmt.Print(res.Asm)
}
