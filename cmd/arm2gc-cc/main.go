// arm2gc-cc compiles MiniC to the garbled processor's assembly.
//
//	arm2gc-cc prog.c            # assembly on stdout
//	arm2gc-cc -ast prog.c       # (reserved)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"arm2gc/internal/minicc"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: arm2gc-cc prog.c")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	res, err := minicc.Compile(string(src))
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range res.Warnings {
		fmt.Fprintf(os.Stderr, "warning: %s\n", w)
	}
	fmt.Print(res.Asm)
}
