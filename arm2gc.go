// Package arm2gc is a from-scratch implementation of ARM2GC (Songhori et
// al., DAC 2019): secure two-party computation by garbling an ARM-style
// processor, made practical by the SkipGate algorithm, which garbles only
// the gates whose values actually depend on private data — the public
// program binary drives everything else for free.
//
// The typical flow mirrors the paper's Figure 4:
//
//	src := `void gc_main(const int *a, const int *b, int *c) {
//	    c[0] = a[0] + b[0];
//	}`
//	prog, _, err := arm2gc.CompileC("add", src, arm2gc.Layout{
//	    IMemWords: 64, AliceWords: 1, BobWords: 1, OutWords: 1, ScratchWords: 16,
//	})
//	eng := arm2gc.NewEngine()
//	sess, err := eng.Session(prog, arm2gc.WithMaxCycles(10_000))
//	res, err := sess.Run(ctx, []uint32{2}, []uint32{40})
//	// res.Outputs[0] == 42; res.GarbledTables == 31
//
// The Engine caches the synthesized processor netlist per memory Layout,
// so any number of concurrent sessions over the same geometry share one
// immutable machine. For a real two-party execution over a network, each
// side calls sess.Garble or sess.Evaluate with its private input on its
// end of a connection; everything else — oblivious transfer, garbled
// table streaming, output decoding — is handled internally.
//
// For a deployed two-party service, Server and Client layer negotiated
// sessions on top: a Server registers programs by name over one Engine
// and garbles for many concurrent evaluator connections, and a Client
// reuses one connection for many sequential Evaluate calls, each opened
// by a propose/grant handshake that validates the program and options
// against the server's registration before any cryptography runs.
package arm2gc

import (
	"context"
	"io"

	"arm2gc/internal/circuit"
	"arm2gc/internal/core"
	"arm2gc/internal/cpu"
	"arm2gc/internal/emu"
	"arm2gc/internal/isa"
	"arm2gc/internal/minicc"
	"arm2gc/internal/obliv"
)

// Layout is the processor memory geometry: instruction words plus the four
// data regions (Alice's inputs, Bob's inputs, outputs, scratch+stack).
type Layout = isa.Layout

// Program is a linked binary: the public input p of the garbled execution.
type Program = isa.Program

// MemoryConfig selects and tunes the oblivious data-memory backend of a
// session's processor: which backend, resolved over how many words,
// switching at what threshold (see WithMemoryBackend / WithMemoryConfig).
// The zero value means "auto over the layout's own size at the default
// threshold".
type MemoryConfig = obliv.Config

// Oblivious-memory backend names, re-exported at the root so callers
// never import internal packages. MemoryAuto picks MemoryScan below
// obliv.DefaultThreshold data words (2KB) and MemorySqrtORAM at or above
// it — the paper's "linear scan below the ORAM break-even" rule.
const (
	MemoryAuto     = obliv.Auto
	MemoryScan     = obliv.Scan
	MemorySqrtORAM = obliv.SqrtORAM
)

// CompileC compiles MiniC source (entry point gc_main) and links it
// against a layout. The returned warnings flag conditionals that could
// not be converted to predicated instructions — if their conditions are
// secret, the program counter becomes secret and costs explode (the
// paper's Figure 6 case).
func CompileC(name, src string, l Layout) (*Program, []string, error) {
	res, err := minicc.Compile(src)
	if err != nil {
		return nil, nil, err
	}
	fitted, err := isa.FitLayout(res.Asm, l)
	if err != nil {
		return nil, nil, err
	}
	p, err := isa.Link(name, res.Asm, fitted)
	if err != nil {
		return nil, nil, err
	}
	return p, res.Warnings, nil
}

// Assemble assembles ARM-style assembly (entry point gc_main) and links it.
func Assemble(name, src string, l Layout) (*Program, error) {
	fitted, err := isa.FitLayout(src, l)
	if err != nil {
		return nil, err
	}
	return isa.Link(name, src, fitted)
}

// Emulate runs a program natively (no cryptography) and returns the output
// region and the cycle count. SFE programs have input-independent control
// flow, so the cycle count from any input is the cc both parties agree on.
func Emulate(p *Program, alice, bob []uint32, maxCycles int) ([]uint32, int, error) {
	m, err := emu.New(p, alice, bob)
	if err != nil {
		return nil, 0, err
	}
	cycles, err := m.Run(maxCycles)
	if err != nil {
		return nil, 0, err
	}
	return m.Output(), cycles, nil
}

// Machine is a garbled processor instance for one memory layout; it can
// run any program linked against that layout. Machines are immutable
// after construction and safe for concurrent use.
type Machine struct {
	cpu *cpu.CPU
}

// NewMachine returns the processor for a layout, synthesizing the netlist
// on first use — it serves from DefaultEngine's cache, so repeated calls
// for one layout (the old per-run pattern) no longer pay repeated builds.
//
// Deprecated: use Engine.Machine, or skip the Machine entirely with
// Engine.Session.
func NewMachine(l Layout) (*Machine, error) { return DefaultEngine.Machine(l) }

// Stats reports the processor's netlist composition (the per-cycle cost a
// conventional garbler would pay).
func (m *Machine) Stats() circuit.Stats { return m.cpu.Circuit.Stats() }

// MemoryBackend reports the resolved oblivious-memory backend this
// machine's netlist was synthesized with (MemoryScan or MemorySqrtORAM;
// never MemoryAuto — auto resolves before synthesis).
func (m *Machine) MemoryBackend() string { return m.cpu.Backend }

// WriteNetlist serializes the processor netlist in the text format of
// internal/circuit, for inspection or external tooling.
func (m *Machine) WriteNetlist(w io.Writer) error { return m.cpu.Circuit.WriteText(w) }

// RunInfo reports a garbled execution.
type RunInfo struct {
	Outputs []uint32 // the output region c[] (nil when this party does not learn it)
	Cycles  int
	Halted  bool

	// GarbledTables is the number of garbled tables transferred — the
	// paper's "# of garbled non-XOR gates" metric.
	GarbledTables int

	// Conventional is cycles × processor non-XOR gates: the cost without
	// SkipGate (Table 4's w/o column).
	Conventional int64

	// TableFrames is the number of garbled-table network frames a
	// two-party run exchanged (see WithCycleBatch); zero for in-process
	// runs.
	TableFrames int

	Detail core.CycleStats
}

func (m *Machine) inputs(p *Program, alice, bob []uint32) (pub, ab, bb []bool, err error) {
	pub, err = m.cpu.PublicBits(p)
	if err != nil {
		return nil, nil, nil, err
	}
	ab, err = m.cpu.InputBits(circuit.Alice, alice)
	if err != nil {
		return nil, nil, nil, err
	}
	bb, err = m.cpu.InputBits(circuit.Bob, bob)
	if err != nil {
		return nil, nil, nil, err
	}
	return pub, ab, bb, nil
}

// session wraps the machine in a one-shot Session carrying maxCycles, for
// the deprecated positional-argument methods.
func (m *Machine) session(p *Program, maxCycles int) (*Session, error) {
	cfg, err := newSessionConfig([]Option{WithMaxCycles(maxCycles)})
	if err != nil {
		return nil, err
	}
	return &Session{m: m, prog: p, cfg: cfg}, nil
}

// Run executes the full garbled protocol in process (both parties).
//
// Deprecated: use Engine.Session and Session.Run, which add context
// cancellation and per-session options.
func (m *Machine) Run(p *Program, alice, bob []uint32, maxCycles int) (*RunInfo, error) {
	s, err := m.session(p, maxCycles)
	if err != nil {
		return nil, err
	}
	return s.Run(context.Background(), alice, bob)
}

// Count measures the garbled-table counts of a program without doing any
// cryptography (the schedule is independent of label values, so the
// counts are exact).
//
// Deprecated: use Engine.Session and Session.Count.
func (m *Machine) Count(p *Program, maxCycles int) (*RunInfo, error) {
	s, err := m.session(p, maxCycles)
	if err != nil {
		return nil, err
	}
	return s.Count(context.Background())
}

func (m *Machine) info(p *Program, outBits []bool, st core.Stats, halted bool) *RunInfo {
	info := &RunInfo{
		Cycles:        st.Cycles,
		Halted:        halted,
		GarbledTables: st.Total.Garbled,
		Conventional:  int64(st.Cycles) * int64(m.cpu.Circuit.Stats().NonXOR),
		Detail:        st.Total,
	}
	if outBits != nil {
		info.Outputs = cpu.OutWords(outBits[:p.Layout.OutWords*32])
	}
	return info
}

// Garble plays Alice (the garbler) over a connection: she contributes the
// alice[] input array and learns the outputs.
//
// Deprecated: use Engine.Session and Session.Garble, which add context
// cancellation, output-mode selection and cycle batching.
func (m *Machine) Garble(conn io.ReadWriter, p *Program, alice []uint32, maxCycles int) (*RunInfo, error) {
	s, err := m.session(p, maxCycles)
	if err != nil {
		return nil, err
	}
	return s.Garble(context.Background(), conn, alice)
}

// Evaluate plays Bob (the evaluator) over a connection.
//
// Deprecated: use Engine.Session and Session.Evaluate.
func (m *Machine) Evaluate(conn io.ReadWriter, p *Program, bob []uint32, maxCycles int) (*RunInfo, error) {
	s, err := m.session(p, maxCycles)
	if err != nil {
		return nil, err
	}
	return s.Evaluate(context.Background(), conn, bob)
}

func (m *Machine) partyBits(p *Program, owner circuit.Owner, words []uint32) ([]bool, []bool, error) {
	pub, err := m.cpu.PublicBits(p)
	if err != nil {
		return nil, nil, err
	}
	bits, err := m.cpu.InputBits(owner, words)
	if err != nil {
		return nil, nil, err
	}
	return pub, bits, nil
}

// Disassemble renders a linked program.
func Disassemble(p *Program) string { return p.Disassemble() }

// Verify cross-checks a garbled run against native execution via
// DefaultEngine, so the machine comes from the layout cache.
//
// Deprecated: use Engine.Verify, which takes a context and options.
func Verify(p *Program, alice, bob []uint32, maxCycles int) (*RunInfo, error) {
	return DefaultEngine.Verify(context.Background(), p, alice, bob, WithMaxCycles(maxCycles))
}
