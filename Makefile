GO ?= go
FUZZTIME ?= 10s

# The benchmark set `make bench-json` tracks: the warm-session cache path,
# the pipelined garbler, the parallel cycle engine, trace replay and the
# serial per-cycle primitives they are gated against (BenchmarkTraceReplay
# rides next to BenchmarkSchedulerCycle — the classify pass replay removes),
# plus the offline/online split (BenchmarkPooledSession rides next to
# BenchmarkColdSession — the garbling work the pool moves offline).
BENCH_SET ?= BenchmarkEngineSessionReuse|BenchmarkGarblerPipeline|BenchmarkParallelCycle|BenchmarkSchedulerCycle|BenchmarkGarbledProcessorCycle|BenchmarkTraceReplay|BenchmarkColdSession|BenchmarkPooledSession
BENCHTIME ?= 50x

# The oblivious-memory crossover pair: garbled tables per memory access
# under the linear scan vs the square-root ORAM on the 2KB relaxation
# workload (above the break-even, where the ORAM must win). The counts
# are exact schedule properties, so one iteration suffices and the
# tables/access metrics gate machine-independently in bench-compare.
BENCH_ORAM ?= BenchmarkMemAccessScan|BenchmarkMemAccessSqrtORAM
BENCH_ORAM_TIME ?= 1x
BENCH_THRESHOLD ?= 1.25
BENCH_FILE ?= BENCH_$(shell date +%Y-%m-%d).json

# Benchmarks run with the machine's full parallelism: an inherited
# GOMAXPROCS of 1 silently biases BenchmarkParallelCycle against
# workers>1. The value lands in the report's hardware fingerprint
# (gomaxprocs), which gates ns/op comparisons to like hardware.
NPROC ?= $(shell getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
BENCH_ENV = GOMAXPROCS=$(NPROC)

.PHONY: all build vet analyze test race fuzz-smoke bench-engine bench-pipeline bench-pool bench-oram bench-json bench-baseline bench-compare cover ci dev-certs serve-tls test-hardening test-trace test-pool test-gateway test-membackend

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The repository's own static-analysis suite (cmd/arm2gc-vet): wire
# determinism, crypto hygiene, context threading, lock discipline, the
# typed-frame wire contract and error-discard checking over every module
# package — then the netlist structural linter over the example registry
# programs on both oblivious-memory backends. staticcheck rides along
# when installed (CI installs it pinned; the offline dev loop skips it).
STATICCHECK_VERSION ?= 2025.1.1
analyze:
	$(GO) run ./cmd/arm2gc-vet
	$(GO) run ./cmd/arm2gc-vet -netlist examples/registry/addmax.c -alice-words 1 -bob-words 1 -out-words 2 -scratch 16
	$(GO) run ./cmd/arm2gc-vet -netlist examples/registry/relax.c -mem-backend sqrt-oram
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (CI pins $(STATICCHECK_VERSION))"; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race -shuffle=on ./...

# Short differential-fuzzing smoke run: random instruction streams on the
# processor circuit vs the emulator (see internal/cpu FuzzInstructionStream).
fuzz-smoke:
	$(GO) test ./internal/cpu -run '^$$' -fuzz FuzzInstructionStream -fuzztime $(FUZZTIME)

# Cache-hit guard: warm Engine sessions must perform zero netlist
# synthesis (the benchmark fails if they rebuild).
bench-engine:
	$(BENCH_ENV) $(GO) test -run '^$$' -bench BenchmarkEngineSessionReuse -benchtime 50x .

# Pipelined vs serial garbler wall clock over net.Pipe with simulated
# link latency: the pipelined path overlaps garbling with frame I/O.
bench-pipeline:
	$(BENCH_ENV) $(GO) test -run '^$$' -bench BenchmarkGarblerPipeline -benchtime 5x .

# Offline/online split: a session served from a pre-garbled stream (the
# state a garble-ahead pool hit leaves the server in) vs a cold one that
# garbles inline — the gap is the online latency the pool removes.
bench-pool:
	$(BENCH_ENV) $(GO) test -run '^$$' -bench 'BenchmarkColdSession|BenchmarkPooledSession' -benchtime 5x .

# Oblivious-memory crossover: scan vs square-root ORAM tables per
# memory access, standalone (the same pair rides in bench-json's report
# and gates in bench-compare).
bench-oram:
	$(BENCH_ENV) $(GO) test -run '^$$' -bench '$(BENCH_ORAM)' -benchtime $(BENCH_ORAM_TIME) .

# Machine-readable benchmark report at the repo root (BENCH_<date>.json):
# ns/op, allocs and the engine's own counters for the core benchmark set,
# plus the bench-oram crossover pair (at its own single-iteration count —
# its gated metric is exact, not timed).
bench-json:
	{ $(BENCH_ENV) $(GO) test -run '^$$' -bench '$(BENCH_SET)' -benchmem -benchtime $(BENCHTIME) . ; \
	  $(BENCH_ENV) $(GO) test -run '^$$' -bench '$(BENCH_ORAM)' -benchtime $(BENCH_ORAM_TIME) . ; } \
		| $(GO) run ./cmd/bench-json -out $(BENCH_FILE)

# Regenerate the committed regression baseline (run on the machine class
# that gates, i.e. the CI runner, and commit the result).
bench-baseline:
	$(MAKE) bench-json BENCH_FILE=BENCH_baseline.json

# Gate the current tree against the committed baseline. ns/op is compared
# only on matching hardware; allocs/op and tables/cycle always.
bench-compare: bench-json
	$(GO) run ./cmd/bench-json -compare BENCH_baseline.json,$(BENCH_FILE) -threshold $(BENCH_THRESHOLD)

# Throwaway development TLS material (CA + server/client leaves, valid
# 24h, loopback only) under ./dev-certs — never commit it; .gitignore'd.
dev-certs:
	$(GO) run ./cmd/dev-certs -dir dev-certs

# Serve the example two-program registry over TLS with fresh dev certs
# and a Prometheus endpoint on :9090. Pair with e.g.:
#   go run ./cmd/arm2gc -role client -connect localhost:9000 \
#     -program addmax -c examples/registry/addmax.c -input 42 \
#     -alice-words 1 -bob-words 1 -out-words 2 -scratch 16 \
#     -auth-token demo-token -tls-ca dev-certs/ca.pem
serve-tls: dev-certs
	$(GO) run ./cmd/arm2gc -role serve -listen :9000 \
		-registry examples/registry/registry.json \
		-tls-cert dev-certs/server.pem -tls-key dev-certs/server-key.pem \
		-metrics :9090

# The service-hardening test set: TLS/mTLS round trips, authorization,
# registry manifests, metrics exactness, shutdown hygiene and client
# cancellation — shuffled and under the race detector, as in CI.
test-hardening:
	$(GO) test -race -shuffle=on -count=1 \
		-run 'TestServer|TestClient|TestProposal|TestNegotiate|TestLoadRegistry|TestCompare' \
		. ./internal/proto ./internal/cli ./cmd/bench-json

# Classification-trace correctness: record/replay across the core engine,
# the trace cache, the wire protocol (byte-identical frame pinning) and
# the Engine API — shuffled and under the race detector, as in CI.
test-trace:
	$(GO) test -race -shuffle=on -count=1 \
		-run 'Trace|TestPipelinedStatsSink' \
		. ./internal/core ./internal/cpu ./internal/proto

# Garble-ahead correctness: recorded streams byte-identical to live
# garbling, single-use enforcement, eviction/spill lifecycle, evaluator
# read-ahead and the server's pool-hit/miss paths — shuffled and under
# the race detector, as in CI.
test-pool:
	$(GO) test -race -shuffle=on -count=1 \
		-run 'Record|ReadAhead|Pool|GarbleAhead' \
		. ./internal/proto ./internal/pool

# Fleet-gateway correctness: hash-ring sharding and bounded-load spill,
# per-peer shedding, the chaos sequence (backend kill → clean client
# error → eject → survivor serves → re-admit), live registry/fleet ops,
# client retry/backoff and two-hop TLS — shuffled and under the race
# detector, as in CI's fleet job.
test-gateway:
	$(GO) test -race -shuffle=on -count=1 \
		-run 'TestGateway|TestRing|TestPeerLimiter|TestServerRetire|TestPoolRetire|TestClientRetry|TestClientWithRetry|TestGatewayOpts' \
		. ./internal/gateway ./internal/pool ./internal/cli

# Oblivious-memory backend correctness: the backend-equivalence grid
# (scan vs sqrt-ORAM, identical decoded outputs across worker/pipeline/
# batch settings), auto selection, negotiation mismatch rejection, the
# wire extension and the obliv/cpu unit suites — shuffled and under the
# race detector, as in CI's memory-backends job.
test-membackend:
	$(GO) test -race -shuffle=on -count=1 \
		-run 'MemoryBackend|MemBackend|Sqrt|Permute|Backend' \
		. ./internal/obliv ./internal/cpu ./internal/build ./internal/proto

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

ci: build vet analyze race fuzz-smoke bench-engine bench-pipeline bench-compare
