GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race fuzz-smoke bench-engine bench-pipeline cover ci

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short differential-fuzzing smoke run: random instruction streams on the
# processor circuit vs the emulator (see internal/cpu FuzzInstructionStream).
fuzz-smoke:
	$(GO) test ./internal/cpu -run '^$$' -fuzz FuzzInstructionStream -fuzztime $(FUZZTIME)

# Cache-hit guard: warm Engine sessions must perform zero netlist
# synthesis (the benchmark fails if they rebuild).
bench-engine:
	$(GO) test -run '^$$' -bench BenchmarkEngineSessionReuse -benchtime 50x .

# Pipelined vs serial garbler wall clock over net.Pipe with simulated
# link latency: the pipelined path overlaps garbling with frame I/O.
bench-pipeline:
	$(GO) test -run '^$$' -bench BenchmarkGarblerPipeline -benchtime 5x .

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

ci: build vet race fuzz-smoke bench-engine bench-pipeline
