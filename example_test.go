package arm2gc_test

// Runnable examples for the documented Engine/Session API; go test
// executes them, so the README's recommended flow can never rot.

import (
	"context"
	"fmt"
	"log"
	"net"

	"arm2gc"
)

const exampleSrc = `
void gc_main(const int *a, const int *b, int *c) {
	c[0] = a[0] + b[0];
}
`

func exampleLayout() arm2gc.Layout {
	return arm2gc.Layout{IMemWords: 64, AliceWords: 1, BobWords: 1, OutWords: 1, ScratchWords: 16}
}

// The recommended flow: compile once, create an Engine, run sessions. The
// Engine caches the synthesized processor per Layout, so the second
// session is free of the ~10ms netlist build.
func ExampleEngine() {
	prog, _, err := arm2gc.CompileC("add", exampleSrc, exampleLayout())
	if err != nil {
		log.Fatal(err)
	}
	eng := arm2gc.NewEngine()

	for _, inputs := range [][2]uint32{{2, 40}, {30, 12}} {
		sess, err := eng.Session(prog, arm2gc.WithMaxCycles(10_000))
		if err != nil {
			log.Fatal(err)
		}
		info, err := sess.Run(context.Background(), []uint32{inputs[0]}, []uint32{inputs[1]})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d + %d = %d (%d garbled tables)\n",
			inputs[0], inputs[1], info.Outputs[0], info.GarbledTables)
	}
	fmt.Printf("netlist builds: %d\n", eng.Builds())
	// Output:
	// 2 + 40 = 42 (31 garbled tables)
	// 30 + 12 = 42 (31 garbled tables)
	// netlist builds: 1
}

// Cross-checking a program against native emulation before deployment.
func ExampleEngine_Verify() {
	prog, _, err := arm2gc.CompileC("add", exampleSrc, exampleLayout())
	if err != nil {
		log.Fatal(err)
	}
	info, err := arm2gc.DefaultEngine.Verify(context.Background(), prog,
		[]uint32{19}, []uint32{23}, arm2gc.WithMaxCycles(10_000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified: 19 + 23 = %d\n", info.Outputs[0])
	// Output:
	// verified: 19 + 23 = 42
}

// A real two-party execution: the garbler and evaluator each hold one
// private input and talk over a connection (net.Pipe here; TCP in the
// cmd/arm2gc tool). WithOutputMode(OutputGarblerOnly) lets only the
// garbler decode the result; WithCycleBatch packs several cycles of
// garbled tables per network frame.
func ExampleSession_twoParty() {
	prog, _, err := arm2gc.CompileC("add", exampleSrc, exampleLayout())
	if err != nil {
		log.Fatal(err)
	}
	eng := arm2gc.NewEngine()
	opts := []arm2gc.Option{
		arm2gc.WithMaxCycles(10_000),
		arm2gc.WithOutputMode(arm2gc.OutputGarblerOnly),
		arm2gc.WithCycleBatch(8),
	}

	ca, cb := net.Pipe()
	done := make(chan *arm2gc.RunInfo, 1)
	go func() {
		sess, err := eng.Session(prog, opts...)
		if err != nil {
			log.Fatal(err)
		}
		info, err := sess.Garble(context.Background(), ca, []uint32{40})
		if err != nil {
			log.Fatal(err)
		}
		done <- info
	}()
	sess, err := eng.Session(prog, opts...)
	if err != nil {
		log.Fatal(err)
	}
	bobInfo, err := sess.Evaluate(context.Background(), cb, []uint32{2})
	if err != nil {
		log.Fatal(err)
	}
	aliceInfo := <-done

	fmt.Printf("garbler learned: %d\n", aliceInfo.Outputs[0])
	fmt.Printf("evaluator learned outputs: %v\n", bobInfo.Outputs)
	// Output:
	// garbler learned: 42
	// evaluator learned outputs: []
}
