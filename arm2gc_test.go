package arm2gc

import (
	"net"
	"testing"
)

const addSrc = `
void gc_main(const int *a, const int *b, int *c) {
	c[0] = a[0] + b[0];
	c[1] = a[0] > b[0] ? a[0] : b[0];
}
`

func testLayout() Layout {
	return Layout{IMemWords: 64, AliceWords: 1, BobWords: 1, OutWords: 2, ScratchWords: 16}
}

func TestFacadeCompileRunVerify(t *testing.T) {
	prog, warnings, err := CompileC("add", addSrc, testLayout())
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", warnings)
	}
	info, err := Verify(prog, []uint32{40}, []uint32{2}, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if info.Outputs[0] != 42 || info.Outputs[1] != 40 {
		t.Fatalf("outputs = %v, want [42 40]", info.Outputs)
	}
	if info.GarbledTables <= 0 || info.GarbledTables > 300 {
		t.Fatalf("garbled %d tables; expected a small add+max cost", info.GarbledTables)
	}
	if !info.Halted {
		t.Fatal("program did not halt")
	}
}

func TestFacadeCount(t *testing.T) {
	prog, _, err := CompileC("add", addSrc, testLayout())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(prog.Layout)
	if err != nil {
		t.Fatal(err)
	}
	run, err := m.Run(prog, []uint32{1}, []uint32{2}, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	count, err := m.Count(prog, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if count.GarbledTables != run.GarbledTables || count.Cycles != run.Cycles {
		t.Fatalf("Count (%d tables/%d cycles) disagrees with Run (%d/%d)",
			count.GarbledTables, count.Cycles, run.GarbledTables, run.Cycles)
	}
}

func TestFacadeTwoParty(t *testing.T) {
	prog, _, err := CompileC("add", addSrc, testLayout())
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()

	type r struct {
		info *RunInfo
		err  error
	}
	ch := make(chan r, 1)
	go func() {
		m, err := NewMachine(prog.Layout)
		if err != nil {
			ch <- r{nil, err}
			return
		}
		info, err := m.Garble(ca, prog, []uint32{1000}, 10_000)
		ch <- r{info, err}
	}()
	m, err := NewMachine(prog.Layout)
	if err != nil {
		t.Fatal(err)
	}
	bobInfo, err := m.Evaluate(cb, prog, []uint32{23}, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	aliceR := <-ch
	if aliceR.err != nil {
		t.Fatal(aliceR.err)
	}
	for _, info := range []*RunInfo{aliceR.info, bobInfo} {
		if info.Outputs[0] != 1023 || info.Outputs[1] != 1000 {
			t.Fatalf("outputs = %v, want [1023 1000]", info.Outputs)
		}
	}
}

func TestFacadeAssemble(t *testing.T) {
	prog, err := Assemble("neg", `
gc_main:
	ldr r4, [r0]
	rsb r4, r4, #0
	str r4, [r2]
	mov pc, lr
`, testLayout())
	if err != nil {
		t.Fatal(err)
	}
	out, cycles, err := Emulate(prog, []uint32{5}, nil, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != ^uint32(5)+1 {
		t.Fatalf("-5 = %#x", out[0])
	}
	if cycles <= 0 {
		t.Fatal("no cycles")
	}
	if Disassemble(prog) == "" {
		t.Fatal("empty disassembly")
	}
}
