package arm2gc

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"arm2gc/internal/proto"
)

// startServer spins up a Server over a fresh TCP listener and returns its
// address plus a shutdown function that cancels Serve and waits for it.
func startServer(t *testing.T, srv *Server) (addr string, shutdown func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	return ln.Addr().String(), func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("Serve returned %v on shutdown, want nil", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("Serve did not return after shutdown")
		}
	}
}

// TestServerConcurrentClients is the acceptance anchor: one Server over
// one Engine garbles for 8 concurrent evaluator clients — through the
// pipelined garbler path and a 4-session concurrency limit — with exactly
// one netlist synthesis.
func TestServerConcurrentClients(t *testing.T) {
	prog := compileAdd(t)
	eng := NewEngine()
	srv := NewServer(eng, WithMaxSessions(4))
	if err := srv.Register("add", prog,
		WithMaxCycles(10_000),
		WithCycleBatch(4),
		WithPipeline(2),
		WithGarblerInput([]uint32{100})); err != nil {
		t.Fatal(err)
	}
	addr, shutdown := startServer(t, srv)

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := Dial(context.Background(), addr, WithClientEngine(eng))
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			if err := cl.Register("add", prog); err != nil {
				errs <- err
				return
			}
			info, err := cl.Evaluate(context.Background(), "add", []uint32{uint32(i)})
			if err != nil {
				errs <- err
				return
			}
			if info.Outputs[0] != 100+uint32(i) {
				t.Errorf("client %d: sum = %d, want %d", i, info.Outputs[0], 100+i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Shutdown waits for every handler, so the served count is settled.
	shutdown()
	if got := eng.Builds(); got != 1 {
		t.Fatalf("%d concurrent sessions performed %d netlist builds, want 1", clients, got)
	}
	if got := srv.SessionsServed(); got != clients {
		t.Fatalf("server counted %d sessions, want %d", got, clients)
	}
}

// countingListener counts accepted connections.
type countingListener struct {
	net.Listener
	accepts atomic.Int64
}

func (l *countingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.accepts.Add(1)
	}
	return c, err
}

// TestClientConnectionReuse runs several sequential sessions — including
// per-session option overrides — over one dialed connection, then checks
// shutdown closes the idle connection promptly.
func TestClientConnectionReuse(t *testing.T) {
	prog := compileAdd(t)
	eng := NewEngine()
	srv := NewServer(eng)
	if err := srv.Register("add", prog, WithMaxCycles(10_000), WithGarblerInput([]uint32{7})); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cln := &countingListener{Listener: ln}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, cln) }()

	cl, err := Dial(context.Background(), ln.Addr().String(), WithClientEngine(eng))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("add", prog); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		opts := []Option{}
		if i%2 == 1 {
			// Per-session overrides within the registration's bounds.
			opts = append(opts, WithCycleBatch(8), WithMaxCycles(5_000))
		}
		info, err := cl.Evaluate(context.Background(), "add", []uint32{uint32(10 * i)}, opts...)
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		if info.Outputs[0] != 7+uint32(10*i) {
			t.Fatalf("session %d: sum = %d, want %d", i, info.Outputs[0], 7+10*i)
		}
	}
	if got := cln.accepts.Load(); got != 1 {
		t.Fatalf("4 sessions used %d connections, want 1", got)
	}

	// Graceful shutdown: the connection is idle between sessions, so
	// Serve must close it and return promptly.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v on shutdown, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return with an idle connection open")
	}
	if got := srv.SessionsServed(); got != 4 {
		t.Fatalf("server counted %d sessions, want 4", got)
	}
	if _, err := cl.Evaluate(context.Background(), "add", []uint32{1}); err == nil {
		t.Fatal("Evaluate succeeded against a shut-down server")
	}
}

// TestServerNegotiationRejects covers the rejection cases — and that a
// rejection costs neither the connection nor the server.
func TestServerNegotiationRejects(t *testing.T) {
	prog := compileAdd(t)
	eng := NewEngine()
	srv := NewServer(eng)
	if err := srv.Register("add", prog, WithMaxCycles(1_000), WithGarblerInput([]uint32{1})); err != nil {
		t.Fatal(err)
	}
	addr, shutdown := startServer(t, srv)

	cl, err := Dial(context.Background(), addr, WithClientEngine(eng))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("add", prog); err != nil {
		t.Fatal(err)
	}
	if err := cl.Register("other", prog); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		prog   string
		opts   []Option
		reason string
	}{
		{"unknown program", "other", nil, "not available"},
		{"output mode mismatch", "add", []Option{WithOutputMode(OutputEvaluatorOnly)}, "output mode"},
		{"over budget", "add", []Option{WithMaxCycles(100_000)}, "exceeds the registered limit"},
	}
	for _, tc := range cases {
		_, err := cl.Evaluate(context.Background(), tc.prog, []uint32{2}, tc.opts...)
		var rej *RejectedError
		if !errors.As(err, &rej) {
			t.Fatalf("%s: got %v, want *RejectedError", tc.name, err)
		}
		if !strings.Contains(rej.Reason, tc.reason) {
			t.Errorf("%s: reason %q does not mention %q", tc.name, rej.Reason, tc.reason)
		}
	}

	// Rejections must not poison the connection: a valid session still
	// runs, on the same conn, with an explicitly matching mode.
	info, err := cl.Evaluate(context.Background(), "add", []uint32{2}, WithOutputMode(OutputBoth))
	if err != nil {
		t.Fatalf("valid session after rejections: %v", err)
	}
	if info.Outputs[0] != 3 {
		t.Fatalf("sum = %d, want 3", info.Outputs[0])
	}
	cl.Close()
	shutdown()
	if got := srv.SessionsServed(); got != 1 {
		t.Fatalf("server counted %d sessions, want 1", got)
	}
}

// TestClientProgramMismatch: same name, different binary — the granted
// session id must not verify, and the failure must name the cause instead
// of dying mid-handshake.
func TestClientProgramMismatch(t *testing.T) {
	prog := compileAdd(t)
	other, _, err := CompileC("add", `void gc_main(const int *a, const int *b, int *c) { c[0] = a[0] ^ b[0]; }`, testLayout())
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine()
	srv := NewServer(eng)
	if err := srv.Register("add", prog, WithGarblerInput([]uint32{1})); err != nil {
		t.Fatal(err)
	}
	addr, shutdown := startServer(t, srv)
	defer shutdown()

	cl, err := Dial(context.Background(), addr, WithClientEngine(eng))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("add", other); err != nil {
		t.Fatal(err)
	}
	_, err = cl.Evaluate(context.Background(), "add", []uint32{2})
	if err == nil || !strings.Contains(err.Error(), "session id mismatch") {
		t.Fatalf("got %v, want a session id mismatch error", err)
	}
	// The connection state is unknown after a divergence; the client
	// must refuse further use rather than desynchronize.
	if _, err := cl.Evaluate(context.Background(), "add", []uint32{2}); err == nil ||
		!strings.Contains(err.Error(), "broken") {
		t.Fatalf("broken client accepted another session: %v", err)
	}
}

// TestServerSessionTimeoutFreesSlot: a client that wins the grant and
// then goes silent must not pin its WithMaxSessions slot forever — the
// session timeout aborts it and a healthy client gets served.
func TestServerSessionTimeoutFreesSlot(t *testing.T) {
	prog := compileAdd(t)
	eng := NewEngine()
	srv := NewServer(eng, WithMaxSessions(1), WithSessionTimeout(2*time.Second))
	if err := srv.Register("add", prog, WithGarblerInput([]uint32{1})); err != nil {
		t.Fatal(err)
	}
	addr, shutdown := startServer(t, srv)
	defer shutdown()

	// The stalling client: proposes, receives the grant (the slot is
	// held from before the grant is written), then never runs the
	// session.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := proto.Negotiate(context.Background(), raw, proto.Proposal{Program: "add"}); err != nil {
		t.Fatal(err)
	}

	cl, err := Dial(context.Background(), addr, WithClientEngine(eng))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("add", prog); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	info, err := cl.Evaluate(ctx, "add", []uint32{2})
	if err != nil {
		t.Fatalf("healthy client behind a stalled one: %v", err)
	}
	if info.Outputs[0] != 3 {
		t.Fatalf("sum = %d, want 3", info.Outputs[0])
	}
}

// TestServerRegisterValidation covers registration-time failures.
func TestServerRegisterValidation(t *testing.T) {
	prog := compileAdd(t)
	srv := NewServer(NewEngine())
	if err := srv.Register("", prog); err != nil {
		t.Fatalf("registering under the program's own name: %v", err)
	}
	if err := srv.Register("add", prog); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := srv.Register("bad", prog, WithCycleBatch(0)); err == nil {
		t.Fatal("invalid defaults accepted")
	}
	if err := srv.Register("nil", nil); err == nil {
		t.Fatal("nil program accepted")
	}
}

// TestServerRetire: a retired program rejects like an unknown one (same
// wording, connection kept), its garble-ahead entries are dropped, and
// the name is free for a fresh registration — the live registry op the
// fleet admin endpoint builds on.
func TestServerRetire(t *testing.T) {
	prog := compileAdd(t)
	eng := NewEngine()
	srv := NewServer(eng, WithGarbleAhead(PoolConfig{Depth: 2}))
	if err := srv.Register("add", prog,
		WithMaxCycles(10_000),
		WithGarblerInput([]uint32{100})); err != nil {
		t.Fatal(err)
	}
	if err := srv.WarmGarbleAhead(context.Background()); err != nil {
		t.Fatal(err)
	}
	addr, shutdown := startServer(t, srv)
	defer shutdown()

	cl, err := Dial(context.Background(), addr, WithClientEngine(eng))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("add", prog); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Evaluate(context.Background(), "add", []uint32{1}); err != nil {
		t.Fatal(err)
	}

	if err := srv.Retire("add"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Retire("add"); err == nil {
		t.Fatal("double Retire accepted")
	}
	if ga := srv.Metrics().GarbleAhead; ga == nil || ga.Ready != 0 {
		t.Fatalf("garble-ahead entries survive Retire: %+v", ga)
	}
	var rej *RejectedError
	if _, err := cl.Evaluate(context.Background(), "add", []uint32{1}); !errors.As(err, &rej) {
		t.Fatalf("retired program: got %v, want *RejectedError", err)
	} else if !strings.Contains(rej.Reason, "not available to this peer") {
		t.Fatalf("retired rejection reads %q; must match the unknown-program wording", rej.Reason)
	}

	// The connection survived, and the name is registrable again.
	if err := srv.Register("add", prog,
		WithMaxCycles(10_000),
		WithGarblerInput([]uint32{200})); err != nil {
		t.Fatalf("re-register after Retire: %v", err)
	}
	info, err := cl.Evaluate(context.Background(), "add", []uint32{1})
	if err != nil {
		t.Fatalf("session after re-register: %v", err)
	}
	if info.Outputs[0] != 201 {
		t.Fatalf("sum = %d, want 201 (new registration's input)", info.Outputs[0])
	}
}
