package arm2gc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

func compileAdd(t testing.TB) *Program {
	t.Helper()
	prog, warnings, err := CompileC("add", addSrc, testLayout())
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", warnings)
	}
	return prog
}

func TestEngineCachesMachines(t *testing.T) {
	eng := NewEngine()
	m1, err := eng.Machine(testLayout())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := eng.Machine(testLayout())
	if err != nil {
		t.Fatal(err)
	}
	if m1.cpu != m2.cpu {
		t.Fatal("same layout produced distinct netlists")
	}
	if got := eng.Builds(); got != 1 {
		t.Fatalf("builds = %d, want 1", got)
	}

	other := testLayout()
	other.ScratchWords += 4
	if _, err := eng.Machine(other); err != nil {
		t.Fatal(err)
	}
	if got := eng.Builds(); got != 2 {
		t.Fatalf("builds = %d after a second layout, want 2", got)
	}
}

func TestEngineSessionReuseSkipsSynthesis(t *testing.T) {
	eng := NewEngine()
	prog := compileAdd(t)
	s1, err := eng.Session(prog, WithMaxCycles(10_000))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := eng.Session(prog, WithMaxCycles(10_000))
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Builds(); got != 1 {
		t.Fatalf("second session triggered synthesis: builds = %d, want 1", got)
	}
	if s1.Machine().cpu != s2.Machine().cpu {
		t.Fatal("sessions do not share the cached machine")
	}
	info, err := s2.Run(context.Background(), []uint32{40}, []uint32{2})
	if err != nil {
		t.Fatal(err)
	}
	if info.Outputs[0] != 42 {
		t.Fatalf("outputs = %v", info.Outputs)
	}
}

// TestEngineConcurrentSessions drives N parallel in-process runs over one
// shared layout — the serving pattern the Engine exists for. Run under
// -race in CI.
func TestEngineConcurrentSessions(t *testing.T) {
	eng := NewEngine()
	prog := compileAdd(t)
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess, err := eng.Session(prog, WithMaxCycles(10_000))
			if err != nil {
				errs[i] = err
				return
			}
			a, b := uint32(100+i), uint32(i)
			info, err := sess.Run(context.Background(), []uint32{a}, []uint32{b})
			if err != nil {
				errs[i] = err
				return
			}
			if info.Outputs[0] != a+b || info.Outputs[1] != a {
				errs[i] = fmt.Errorf("session %d: outputs %v, want [%d %d]", i, info.Outputs, a+b, a)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := eng.Builds(); got != 1 {
		t.Fatalf("%d concurrent sessions caused %d builds, want 1", n, got)
	}
}

// TestEngineConcurrentTwoParty runs two full networked sessions in
// parallel over one shared machine (four protocol endpoints at once).
func TestEngineConcurrentTwoParty(t *testing.T) {
	eng := NewEngine()
	prog := compileAdd(t)
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 2; i++ {
		ca, cb := net.Pipe()
		a, b := uint32(1000*(i+1)), uint32(i+5)
		wg.Add(2)
		go func() {
			defer wg.Done()
			defer ca.Close()
			sess, err := eng.Session(prog, WithMaxCycles(10_000))
			if err != nil {
				errs <- err
				return
			}
			info, err := sess.Garble(context.Background(), ca, []uint32{a})
			if err != nil {
				errs <- err
				return
			}
			if info.Outputs[0] != a+b {
				errs <- fmt.Errorf("garbler saw %v, want %d", info.Outputs, a+b)
			}
		}()
		go func() {
			defer wg.Done()
			defer cb.Close()
			sess, err := eng.Session(prog, WithMaxCycles(10_000))
			if err != nil {
				errs <- err
				return
			}
			info, err := sess.Evaluate(context.Background(), cb, []uint32{b})
			if err != nil {
				errs <- err
				return
			}
			if info.Outputs[0] != a+b {
				errs <- fmt.Errorf("evaluator saw %v, want %d", info.Outputs, a+b)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := eng.Builds(); got != 1 {
		t.Fatalf("builds = %d, want 1", got)
	}
}

func TestEngineVerifySingleBuild(t *testing.T) {
	eng := NewEngine()
	prog := compileAdd(t)
	// Verify runs both the emulator and a garbled session; cross-checking
	// twice must still synthesize exactly one netlist.
	for i := 0; i < 2; i++ {
		info, err := eng.Verify(context.Background(), prog, []uint32{40}, []uint32{2}, WithMaxCycles(10_000))
		if err != nil {
			t.Fatal(err)
		}
		if info.Outputs[0] != 42 || info.Outputs[1] != 40 {
			t.Fatalf("outputs = %v, want [42 40]", info.Outputs)
		}
	}
	if got := eng.Builds(); got != 1 {
		t.Fatalf("two Verify calls cost %d builds, want 1", got)
	}
}

func TestSessionOptionValidation(t *testing.T) {
	eng := NewEngine()
	prog := compileAdd(t)
	if _, err := eng.Session(prog, WithMaxCycles(0)); err == nil {
		t.Error("WithMaxCycles(0) accepted")
	}
	if _, err := eng.Session(prog, WithCycleBatch(0)); err == nil {
		t.Error("WithCycleBatch(0) accepted")
	}
}

func TestSessionContextCancelLocalRun(t *testing.T) {
	eng := NewEngine()
	prog := compileAdd(t)
	sess, err := eng.Session(prog, WithMaxCycles(10_000))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.Run(ctx, []uint32{1}, []uint32{2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if _, err := sess.Count(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Count returned %v, want context.Canceled", err)
	}
}

// TestSessionContextCancelNetworked cancels a Garble and an Evaluate whose
// peer never responds; both must return promptly with ctx.Err().
func TestSessionContextCancelNetworked(t *testing.T) {
	eng := NewEngine()
	prog := compileAdd(t)

	run := func(name string, start func(ctx context.Context, sess *Session, conn net.Conn) error) {
		t.Run(name, func(t *testing.T) {
			sess, err := eng.Session(prog, WithMaxCycles(10_000))
			if err != nil {
				t.Fatal(err)
			}
			conn, peer := net.Pipe()
			defer conn.Close()
			defer peer.Close() // the peer stays silent: the protocol blocks
			ctx, cancel := context.WithCancel(context.Background())
			errc := make(chan error, 1)
			go func() { errc <- start(ctx, sess, conn) }()
			time.Sleep(10 * time.Millisecond)
			cancel()
			select {
			case err := <-errc:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("%s returned %v, want context.Canceled", name, err)
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("cancelled %s did not return", name)
			}
		})
	}
	run("garble", func(ctx context.Context, sess *Session, conn net.Conn) error {
		_, err := sess.Garble(ctx, conn, []uint32{1})
		return err
	})
	run("evaluate", func(ctx context.Context, sess *Session, conn net.Conn) error {
		_, err := sess.Evaluate(ctx, conn, []uint32{1})
		return err
	})
}

// runTwoParty wires a garbler and evaluator session over net.Pipe.
func runTwoParty(t *testing.T, gs, es *Session, alice, bob []uint32) (*RunInfo, *RunInfo) {
	t.Helper()
	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()
	type r struct {
		info *RunInfo
		err  error
	}
	ch := make(chan r, 1)
	go func() {
		info, err := gs.Garble(context.Background(), ca, alice)
		ch <- r{info, err}
	}()
	bobInfo, err := es.Evaluate(context.Background(), cb, bob)
	if err != nil {
		t.Fatalf("evaluator: %v", err)
	}
	ga := <-ch
	if ga.err != nil {
		t.Fatalf("garbler: %v", ga.err)
	}
	return ga.info, bobInfo
}

func TestSessionOutputModes(t *testing.T) {
	eng := NewEngine()
	prog := compileAdd(t)
	for _, tc := range []struct {
		mode    OutputMode
		learner string
	}{
		{OutputGarblerOnly, "garbler"},
		{OutputEvaluatorOnly, "evaluator"},
	} {
		gs, err := eng.Session(prog, WithMaxCycles(10_000), WithOutputMode(tc.mode))
		if err != nil {
			t.Fatal(err)
		}
		es, err := eng.Session(prog, WithMaxCycles(10_000), WithOutputMode(tc.mode))
		if err != nil {
			t.Fatal(err)
		}
		ga, ev := runTwoParty(t, gs, es, []uint32{30}, []uint32{12})
		learner, blind := ga, ev
		if tc.mode == OutputEvaluatorOnly {
			learner, blind = ev, ga
		}
		if learner.Outputs[0] != 42 || learner.Outputs[1] != 30 {
			t.Errorf("%s-only: learner outputs %v, want [42 30]", tc.learner, learner.Outputs)
		}
		if blind.Outputs != nil {
			t.Errorf("%s-only: blind party learned %v", tc.learner, blind.Outputs)
		}
		// Both still agree on the cost accounting.
		if ga.GarbledTables != ev.GarbledTables || ga.Cycles != ev.Cycles {
			t.Errorf("cost accounting diverged: %d/%d vs %d/%d",
				ga.GarbledTables, ga.Cycles, ev.GarbledTables, ev.Cycles)
		}
	}
}

// TestSessionHandshakeAbortOnMismatch pairs sessions whose public
// parameters disagree; the session-id check must abort before any labels
// move.
func TestSessionHandshakeAbortOnMismatch(t *testing.T) {
	eng := NewEngine()
	prog := compileAdd(t)
	progB, _, err := CompileC("sub", `
void gc_main(const int *a, const int *b, int *c) {
	c[0] = a[0] - b[0];
	c[1] = a[0];
}
`, testLayout())
	if err != nil {
		t.Fatal(err)
	}

	pair := func(g, e *Session) (gerr, eerr error) {
		ca, cb := net.Pipe()
		errc := make(chan error, 1)
		go func() {
			_, err := g.Garble(context.Background(), ca, []uint32{1})
			errc <- err
		}()
		_, eerr = e.Evaluate(context.Background(), cb, []uint32{2})
		ca.Close()
		cb.Close()
		return <-errc, eerr
	}

	mk := func(p *Program, opts ...Option) *Session {
		s, err := eng.Session(p, append([]Option{WithMaxCycles(10_000)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	// Different program binaries.
	if gerr, eerr := pair(mk(prog), mk(progB)); gerr == nil || eerr == nil {
		t.Errorf("program mismatch: garbler err %v, evaluator err %v", gerr, eerr)
	}
	// Different output modes.
	if gerr, eerr := pair(mk(prog, WithOutputMode(OutputGarblerOnly)), mk(prog)); gerr == nil || eerr == nil {
		t.Errorf("output-mode mismatch: garbler err %v, evaluator err %v", gerr, eerr)
	}
	// Different cycle batches.
	if gerr, eerr := pair(mk(prog, WithCycleBatch(8)), mk(prog)); gerr == nil || eerr == nil {
		t.Errorf("cycle-batch mismatch: garbler err %v, evaluator err %v", gerr, eerr)
	}
}

func TestSessionCycleBatch(t *testing.T) {
	eng := NewEngine()
	prog := compileAdd(t)
	mk := func(batch int) *Session {
		s, err := eng.Session(prog, WithMaxCycles(10_000), WithCycleBatch(batch))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	g1, e1 := runTwoParty(t, mk(1), mk(1), []uint32{40}, []uint32{2})
	g8, e8 := runTwoParty(t, mk(8), mk(8), []uint32{40}, []uint32{2})

	for _, info := range []*RunInfo{g1, e1, g8, e8} {
		if info.Outputs[0] != 42 || info.Outputs[1] != 40 {
			t.Fatalf("outputs = %v, want [42 40]", info.Outputs)
		}
	}
	if g1.GarbledTables != g8.GarbledTables || g1.Cycles != g8.Cycles {
		t.Fatalf("batching changed cost: %d/%d vs %d/%d",
			g1.GarbledTables, g1.Cycles, g8.GarbledTables, g8.Cycles)
	}
	// One frame per cycle unbatched; ~cycles/8 frames batched.
	if g1.TableFrames != g1.Cycles {
		t.Fatalf("unbatched frames = %d over %d cycles", g1.TableFrames, g1.Cycles)
	}
	wantFrames := (g8.Cycles + 7) / 8
	if g8.TableFrames != wantFrames || e8.TableFrames != wantFrames {
		t.Fatalf("batch-8 frames = %d/%d over %d cycles, want %d",
			g8.TableFrames, e8.TableFrames, g8.Cycles, wantFrames)
	}
}

func TestSessionStatsSink(t *testing.T) {
	eng := NewEngine()
	prog := compileAdd(t)
	var updates []CycleUpdate
	sess, err := eng.Session(prog, WithMaxCycles(10_000),
		WithStatsSink(func(u CycleUpdate) { updates = append(updates, u) }))
	if err != nil {
		t.Fatal(err)
	}
	info, err := sess.Run(context.Background(), []uint32{40}, []uint32{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) != info.Cycles {
		t.Fatalf("sink saw %d updates over %d cycles", len(updates), info.Cycles)
	}
	total := 0
	for i, u := range updates {
		if u.Cycle != i+1 {
			t.Fatalf("update %d has cycle %d", i, u.Cycle)
		}
		total += u.Stats.Garbled
	}
	if total != info.GarbledTables {
		t.Fatalf("per-cycle garbled sum %d != total %d", total, info.GarbledTables)
	}
}

func TestDeprecatedShimsShareDefaultEngineCache(t *testing.T) {
	prog := compileAdd(t)
	before := DefaultEngine.Builds()
	m1, err := NewMachine(prog.Layout)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewMachine(prog.Layout)
	if err != nil {
		t.Fatal(err)
	}
	if m1.cpu != m2.cpu {
		t.Fatal("NewMachine shim bypasses the DefaultEngine cache")
	}
	if _, err := Verify(prog, []uint32{40}, []uint32{2}, 10_000); err != nil {
		t.Fatal(err)
	}
	if got := DefaultEngine.Builds(); got > before+1 {
		t.Fatalf("shims performed %d extra builds, want at most 1", got-before)
	}
}
