package arm2gc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"arm2gc/internal/proto"
)

// DefaultDrainTimeout is how long a shutting-down Server waits for
// in-flight sessions to finish before cancelling them (see
// WithDrainTimeout).
const DefaultDrainTimeout = 10 * time.Second

// Server is the garbler side of the two-party API as a network service:
// it wraps one Engine, registers programs by name, and serves any number
// of concurrent evaluator connections, each carrying any number of
// sequential negotiated sessions. All sessions for one Layout share the
// Engine's single cached netlist, so a Server's steady state performs no
// synthesis at all.
//
// A connection runs a propose/grant handshake per session: the Client
// proposes a program name and options, the Server validates them against
// the registration (unknown programs, non-registered output modes and
// over-budget cycle counts are rejected without dropping the connection)
// and then plays the garbler role of the ordinary wire protocol. A
// mid-protocol failure closes only that connection; the Server and its
// other connections keep running.
type Server struct {
	eng     *Engine
	drain   time.Duration
	timeout time.Duration
	sem     chan struct{}
	logf    func(format string, args ...any)

	mu       sync.Mutex
	regs     map[string]*registration
	idle     map[net.Conn]struct{}
	stopping bool

	sessions atomic.Int64
}

// registration is one registered program plus the session defaults the
// server resolves client proposals against.
type registration struct {
	prog     *Program
	defaults []Option
	cfg      sessionConfig
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithMaxSessions caps how many sessions may garble concurrently
// (default: unlimited). Further proposals block — holding their grant —
// until a slot frees, so clients queue instead of failing.
func WithMaxSessions(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.sem = make(chan struct{}, n)
		} else {
			s.sem = nil
		}
	}
}

// WithSessionTimeout bounds the wall-clock of each granted session
// (default: unbounded). A client that negotiates a session and then
// stalls would otherwise pin its handler goroutine — and a
// WithMaxSessions slot — until shutdown; with a timeout the session
// aborts, the connection closes, and the slot frees.
func WithSessionTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.timeout = d }
}

// WithDrainTimeout sets how long Serve waits, after its context is
// cancelled, for in-flight sessions to finish before cancelling them
// (default DefaultDrainTimeout; 0 cancels them immediately). Idle
// connections are closed as soon as shutdown starts regardless.
func WithDrainTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.drain = d }
}

// WithServerLog routes the Server's per-connection error reporting
// (default: discarded) — e.g. WithServerLog(log.Printf).
func WithServerLog(logf func(format string, args ...any)) ServerOption {
	return func(s *Server) { s.logf = logf }
}

// NewServer creates a Server over an Engine (nil means DefaultEngine).
func NewServer(eng *Engine, opts ...ServerOption) *Server {
	if eng == nil {
		eng = DefaultEngine
	}
	s := &Server{
		eng:   eng,
		drain: DefaultDrainTimeout,
		logf:  func(string, ...any) {},
		regs:  make(map[string]*registration),
		idle:  make(map[net.Conn]struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Register makes a program proposable under name (empty name means
// p.Name). The defaults fix the server-side session configuration —
// including the server's private input via WithGarblerInput — and bound
// what clients may propose: the output mode is pinned, WithMaxCycles is
// the budget ceiling, and the cycle batch is the default for clients that
// do not choose their own. Register validates the options, synthesizes
// the layout's netlist into the Engine cache immediately (so the first
// client does not pay it), and fails on duplicate names.
func (s *Server) Register(name string, p *Program, defaults ...Option) error {
	if p == nil {
		return fmt.Errorf("arm2gc: Register: nil program")
	}
	if name == "" {
		name = p.Name
	}
	if name == "" {
		return fmt.Errorf("arm2gc: Register: program has no name")
	}
	if len(name) > proto.MaxProgramName {
		return fmt.Errorf("arm2gc: Register: name of %d bytes exceeds %d", len(name), proto.MaxProgramName)
	}
	cfg, err := newSessionConfig(defaults)
	if err != nil {
		return err
	}
	if _, err := s.eng.Session(p, defaults...); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.regs[name]; dup {
		return fmt.Errorf("arm2gc: Register: program %q already registered", name)
	}
	s.regs[name] = &registration{prog: p, defaults: defaults, cfg: cfg}
	return nil
}

// SessionsServed reports how many sessions completed successfully — an
// observable for connection-reuse and load tests.
func (s *Server) SessionsServed() int64 { return s.sessions.Load() }

// Serve accepts evaluator connections on ln until ctx is cancelled,
// running each connection's sessions on its own goroutine. Shutdown is
// graceful: the listener and all idle connections close immediately,
// in-flight sessions get the drain timeout to finish, and Serve returns
// only when every connection handler has. It returns nil on a
// context-driven shutdown and the accept error otherwise. A Server is
// single-use: once Serve has shut down, create a new Server to serve
// again.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	if ctx == nil {
		ctx = context.Background()
	}
	sessCtx, cancelSessions := context.WithCancel(context.Background())
	defer cancelSessions()
	handlersDone := make(chan struct{})
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		select {
		case <-handlersDone:
			return
		case <-ctx.Done():
		}
		ln.Close()
		s.closeIdle()
		if s.drain > 0 {
			t := time.NewTimer(s.drain)
			defer t.Stop()
			select {
			case <-t.C:
			case <-handlersDone:
			}
		}
		cancelSessions()
	}()

	var wg sync.WaitGroup
	var acceptErr error
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() == nil {
				acceptErr = err
			}
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.handle(sessCtx, conn)
		}()
	}
	wg.Wait()
	close(handlersDone)
	<-watcherDone
	return acceptErr
}

// rejection is a proposal verdict that keeps the connection alive.
type rejection struct{ reason string }

func (r *rejection) Error() string { return "proposal rejected: " + r.reason }

// handle runs one connection's propose/grant/garble loop.
func (s *Server) handle(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	for {
		if !s.markIdle(conn) {
			return // shutting down
		}
		prop, err := proto.ReadProposal(conn)
		s.unmarkIdle(conn)
		if err != nil {
			return // clean EOF, shutdown close, or a broken peer — this conn only
		}
		err = s.serveOne(ctx, conn, prop)
		var rej *rejection
		if errors.As(err, &rej) {
			if proto.WriteReject(conn, rej.reason) != nil {
				return
			}
			continue // a rejected proposal does not cost the connection
		}
		if err != nil {
			s.logf("arm2gc: session %q from %v: %v", prop.Program, conn.RemoteAddr(), err)
			return // mid-protocol failure: the stream position is unknown
		}
	}
}

// serveOne negotiates and garbles a single session.
func (s *Server) serveOne(ctx context.Context, conn net.Conn, prop proto.Proposal) error {
	s.mu.Lock()
	reg := s.regs[prop.Program]
	s.mu.Unlock()
	if reg == nil {
		return &rejection{fmt.Sprintf("unknown program %q", prop.Program)}
	}
	opts, grant, err := reg.resolve(prop)
	if err != nil {
		return err
	}
	sess, err := s.eng.Session(reg.prog, opts...)
	if err != nil {
		return err
	}
	if grant.SessionID, err = sess.sessionID(); err != nil {
		return err
	}
	if s.sem != nil {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if err := proto.WriteGrant(conn, grant); err != nil {
		return err
	}
	runCtx := ctx
	if s.timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	if _, err := sess.Garble(runCtx, conn, nil); err != nil {
		return err
	}
	s.sessions.Add(1)
	return nil
}

// resolve checks a proposal against the registration and produces the
// resolved option set and grant. The output mode is pinned to the
// registered one, the cycle budget and worker count are capped by the
// registered ones (server CPU is operator policy), and the cycle batch is
// the client's choice within protocol bounds.
func (r *registration) resolve(prop proto.Proposal) ([]Option, proto.Grant, error) {
	grant := proto.Grant{
		Outputs:    r.cfg.outputs,
		CycleBatch: r.cfg.cycleBatch,
		MaxCycles:  r.cfg.maxCycles,
		Workers:    r.cfg.workers,
	}
	if prop.HasOutputs && prop.Outputs != r.cfg.outputs {
		return nil, grant, &rejection{fmt.Sprintf(
			"output mode %v not offered (registered mode %v)", prop.Outputs, r.cfg.outputs)}
	}
	if prop.CycleBatch != 0 {
		if prop.CycleBatch < 1 || prop.CycleBatch > proto.MaxCycleBatch {
			return nil, grant, &rejection{fmt.Sprintf("cycle batch %d out of range", prop.CycleBatch)}
		}
		grant.CycleBatch = prop.CycleBatch
	}
	if prop.MaxCycles != 0 {
		if prop.MaxCycles > r.cfg.maxCycles {
			return nil, grant, &rejection{fmt.Sprintf(
				"cycle budget %d exceeds the registered limit %d", prop.MaxCycles, r.cfg.maxCycles)}
		}
		grant.MaxCycles = prop.MaxCycles
	}
	if prop.Workers != 0 {
		if prop.Workers > proto.MaxWorkers {
			return nil, grant, &rejection{fmt.Sprintf("worker count %d out of range", prop.Workers)}
		}
		if prop.Workers > r.cfg.workers {
			return nil, grant, &rejection{fmt.Sprintf(
				"worker count %d exceeds the registered limit %d", prop.Workers, r.cfg.workers)}
		}
		grant.Workers = prop.Workers
	}
	opts := append(r.defaults[:len(r.defaults):len(r.defaults)],
		WithOutputMode(grant.Outputs),
		WithCycleBatch(grant.CycleBatch),
		WithMaxCycles(grant.MaxCycles),
		WithWorkers(grant.Workers))
	return opts, grant, nil
}

// markIdle records that conn is waiting for a proposal, the state in
// which shutdown may close it immediately; it reports false once shutdown
// has started.
func (s *Server) markIdle(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopping {
		return false
	}
	s.idle[conn] = struct{}{}
	return true
}

func (s *Server) unmarkIdle(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.idle, conn)
}

// closeIdle starts shutdown: no connection may go idle again, and every
// connection currently between sessions is closed.
func (s *Server) closeIdle() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stopping = true
	for conn := range s.idle {
		conn.Close()
	}
}
