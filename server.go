package arm2gc

import (
	"context"
	"crypto/subtle"
	"crypto/tls"
	"crypto/x509"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"arm2gc/internal/pool"
	"arm2gc/internal/proto"
)

// DefaultDrainTimeout is how long a shutting-down Server waits for
// in-flight sessions to finish before cancelling them (see
// WithDrainTimeout).
const DefaultDrainTimeout = 10 * time.Second

// Server is the garbler side of the two-party API as a network service:
// it wraps one Engine, registers programs by name, and serves any number
// of concurrent evaluator connections, each carrying any number of
// sequential negotiated sessions. All sessions for one Layout share the
// Engine's single cached netlist, so a Server's steady state performs no
// synthesis at all.
//
// A connection runs a propose/grant handshake per session: the Client
// proposes a program name and options, the Server validates them against
// the registration (unknown programs, non-registered output modes and
// over-budget cycle counts are rejected without dropping the connection)
// and then plays the garbler role of the ordinary wire protocol. A
// mid-protocol failure closes only that connection; the Server and its
// other connections keep running.
type Server struct {
	eng     *Engine
	drain   time.Duration
	timeout time.Duration
	sem     chan struct{}
	logf    func(format string, args ...any)
	tls     *tls.Config
	pool    *pool.Pool // garble-ahead store; nil without WithGarbleAhead
	poolErr error      // deferred WithGarbleAhead failure

	mu       sync.Mutex
	regs     map[string]*registration
	idle     map[net.Conn]struct{}
	conns    map[net.Conn]struct{} // every live connection, idle or not
	stopping bool

	met serverMetrics
}

// Peer identifies the remote side of a negotiation to an authorization
// policy (see WithAuthorize): its network address, the bearer token its
// proposal carried (if any), and — on a TLS connection — the handshake
// state, whose PeerCertificates hold the verified client chain under
// mutual TLS.
type Peer struct {
	Addr  net.Addr
	Token string
	TLS   *tls.ConnectionState
}

// Certificate returns the peer's verified leaf certificate under mutual
// TLS, nil otherwise — the identity most policies key on (its Subject
// common name or DNS SANs).
func (p Peer) Certificate() *x509.Certificate {
	if p.TLS == nil || len(p.TLS.PeerCertificates) == 0 {
		return nil
	}
	return p.TLS.PeerCertificates[0]
}

// CommonName returns the subject common name of the peer's verified
// certificate, "" when there is none — a convenient identity handle for
// WithAuthorize policies.
func (p Peer) CommonName() string {
	if c := p.Certificate(); c != nil {
		return c.Subject.CommonName
	}
	return ""
}

// registration is one registered program plus the session defaults the
// server resolves client proposals against.
type registration struct {
	prog     *Program
	defaults []Option
	cfg      sessionConfig
	pooled   bool     // garble-ahead entries exist for this program
	poolKey  pool.Key // the default-options session id the pool fills
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithMaxSessions caps how many sessions may garble concurrently
// (default: unlimited). Further proposals block — holding their grant —
// until a slot frees, so clients queue instead of failing.
func WithMaxSessions(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.sem = make(chan struct{}, n)
		} else {
			s.sem = nil
		}
	}
}

// WithSessionTimeout bounds the wall-clock of each granted session
// (default: unbounded). A client that negotiates a session and then
// stalls would otherwise pin its handler goroutine — and a
// WithMaxSessions slot — until shutdown; with a timeout the session
// aborts, the connection closes, and the slot frees.
func WithSessionTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.timeout = d }
}

// WithDrainTimeout sets how long Serve waits, after its context is
// cancelled, for in-flight sessions to finish before cancelling them
// (default DefaultDrainTimeout; 0 cancels them immediately). Idle
// connections are closed as soon as shutdown starts regardless.
func WithDrainTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.drain = d }
}

// WithServerLog routes the Server's per-connection error reporting
// (default: discarded) — e.g. WithServerLog(log.Printf).
func WithServerLog(logf func(format string, args ...any)) ServerOption {
	return func(s *Server) { s.logf = logf }
}

// WithTLSConfig makes Serve speak TLS on every accepted connection
// (default: plaintext). cfg needs at least a server certificate; setting
// ClientAuth to tls.RequireAndVerifyClientCert with a ClientCAs pool
// turns on mutual TLS, and the verified client identity reaches
// WithAuthorize policies through Peer.TLS. Listeners that already produce
// *tls.Conn (tls.NewListener) are served as-is.
func WithTLSConfig(cfg *tls.Config) ServerOption {
	return func(s *Server) { s.tls = cfg }
}

// PoolConfig sizes a Server's garble-ahead pool (see WithGarbleAhead):
// the default per-program depth, the resident and total byte budgets,
// the spill directory and the refill concurrency. The zero value takes
// sane defaults throughout (see the pool package constants).
type PoolConfig = pool.Config

// WithGarbleAhead turns on the offline/online split: background refill
// workers pre-garble complete per-session table streams for every
// registered program (WithGarbleAheadOff opts one out;
// WithGarbleAheadDepth overrides cfg.Depth per program), and serveOne
// dequeues a ready stream instead of garbling live — the online phase
// collapses to OT plus frame I/O, keeping tail latency flat under load
// spikes. Entries are single-use and byte-identical to live garbling on
// the wire; a client proposing non-default options simply misses the
// pool and is garbled live. Refill starts with Serve (or explicitly via
// WarmGarbleAhead); Serve's shutdown stops it and deletes spill files.
func WithGarbleAhead(cfg PoolConfig) ServerOption {
	return func(s *Server) { s.pool, s.poolErr = pool.New(cfg) }
}

// NewServer creates a Server over an Engine (nil means DefaultEngine).
func NewServer(eng *Engine, opts ...ServerOption) *Server {
	if eng == nil {
		eng = DefaultEngine
	}
	s := &Server{
		eng:   eng,
		drain: DefaultDrainTimeout,
		logf:  func(string, ...any) {},
		regs:  make(map[string]*registration),
		idle:  make(map[net.Conn]struct{}),
		conns: make(map[net.Conn]struct{}),
	}
	s.met.programs = make(map[string]*programCounters)
	for _, o := range opts {
		o(s)
	}
	return s
}

// Register makes a program proposable under name (empty name means
// p.Name). The defaults fix the server-side session configuration —
// including the server's private input via WithGarblerInput — and bound
// what clients may propose: the output mode is pinned, WithMaxCycles is
// the budget ceiling, and the cycle batch is the default for clients that
// do not choose their own. Register validates the options, synthesizes
// the layout's netlist into the Engine cache immediately (so the first
// client does not pay it), and fails on duplicate names.
func (s *Server) Register(name string, p *Program, defaults ...Option) error {
	if p == nil {
		return fmt.Errorf("arm2gc: Register: nil program")
	}
	if name == "" {
		name = p.Name
	}
	if name == "" {
		return fmt.Errorf("arm2gc: Register: program has no name")
	}
	if len(name) > proto.MaxProgramName {
		return fmt.Errorf("arm2gc: Register: name of %d bytes exceeds %d", len(name), proto.MaxProgramName)
	}
	if s.poolErr != nil {
		return fmt.Errorf("arm2gc: WithGarbleAhead: %w", s.poolErr)
	}
	cfg, err := newSessionConfig(defaults)
	if err != nil {
		return err
	}
	if _, err := s.eng.Session(p, defaults...); err != nil {
		return err
	}
	reg := &registration{prog: p, defaults: defaults, cfg: cfg}
	// With garble-ahead on (and the program not opted out), build the
	// producer: a session over the registration defaults plus trace reuse
	// — the first offline pass pays the classification, every later one
	// replays the cached trace — whose session id is the pool key clients
	// negotiating the defaults will hit.
	var psess *Session
	if s.pool != nil && cfg.garbleAhead >= 0 {
		prodOpts := append(defaults[:len(defaults):len(defaults)], WithTraceReuse())
		if psess, err = s.eng.Session(p, prodOpts...); err != nil {
			return err
		}
		sid, err := psess.sessionID()
		if err != nil {
			return err
		}
		reg.poolKey = pool.Key(sid)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.regs[name]; dup {
		return fmt.Errorf("arm2gc: Register: program %q already registered", name)
	}
	if psess != nil {
		producer := func(ctx context.Context) (*RecordedStream, error) { return psess.Record(ctx) }
		if err := s.pool.Register(reg.poolKey, name, cfg.garbleAhead, producer); err != nil {
			return err
		}
		reg.pooled = true
	}
	s.regs[name] = reg
	s.met.program(name) // listed in Metrics from registration on, even at zero
	return nil
}

// Retire removes a registered program from service live: proposals for
// name are rejected from now on — with the same wording as an unknown
// program, so retirement leaks nothing — while in-flight sessions finish
// undisturbed. Any garble-ahead entries for it are dropped. The name can
// be registered again afterwards (a new binary under the same name).
func (s *Server) Retire(name string) error {
	s.mu.Lock()
	reg := s.regs[name]
	if reg == nil {
		s.mu.Unlock()
		return fmt.Errorf("arm2gc: Retire: program %q is not registered", name)
	}
	delete(s.regs, name)
	s.mu.Unlock()
	if s.pool != nil && reg.pooled {
		s.pool.Retire(reg.poolKey)
	}
	return nil
}

// WarmGarbleAhead synchronously fills the garble-ahead pool to every
// registered program's depth before serving — so the very first client
// hits a ready stream. A no-op without WithGarbleAhead. Serve's refill
// workers keep the pool topped up afterwards; calling this is optional.
func (s *Server) WarmGarbleAhead(ctx context.Context) error {
	if s.poolErr != nil {
		return fmt.Errorf("arm2gc: WithGarbleAhead: %w", s.poolErr)
	}
	if s.pool == nil {
		return nil
	}
	return s.pool.Fill(ctx)
}

// SessionsServed reports how many sessions completed successfully — an
// observable for connection-reuse and load tests. Metrics returns the
// full counter snapshot.
func (s *Server) SessionsServed() int64 { return s.met.served.Load() }

// Serve accepts evaluator connections on ln until ctx is cancelled,
// running each connection's sessions on its own goroutine. Shutdown is
// graceful: the listener and all idle connections close immediately,
// in-flight sessions get the drain timeout to finish, and Serve returns
// only when every connection handler has. It returns nil on a
// context-driven shutdown and the accept error otherwise. A Server is
// single-use: once Serve has shut down, create a new Server to serve
// again.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if s.poolErr != nil {
		return fmt.Errorf("arm2gc: WithGarbleAhead: %w", s.poolErr)
	}
	if s.pool != nil {
		// Refill runs until shutdown starts (ctx), then Close — after the
		// last handler is done — stops any straggler and deletes the spill
		// files. Sessions draining past ctx fall back to live garbling on
		// an empty (or closed) pool, which is always correct.
		s.pool.Start(ctx)
		defer s.pool.Close()
	}
	// Sessions deliberately outlive ctx: cancelling Serve's ctx starts the
	// graceful drain (listener closed, idle conns dropped), while in-flight
	// sessions run on until the drain timeout, which cancels sessCtx.
	//lint:ignore ctxflow session lifetime is decoupled from Serve's ctx by design — the drain window below, not ctx, ends sessions
	sessCtx, cancelSessions := context.WithCancel(context.Background())
	defer cancelSessions()
	handlersDone := make(chan struct{})
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		select {
		case <-handlersDone:
			return
		case <-ctx.Done():
		}
		_ = ln.Close() // unblocks Accept; the accept loop reports the real error
		s.closeIdle()
		if s.drain > 0 {
			t := time.NewTimer(s.drain)
			defer t.Stop()
			select {
			case <-t.C:
			case <-handlersDone:
			}
		}
		cancelSessions()
		// The session contexts only unblock I/O inside a guarded protocol
		// run. A handler elsewhere — writing a grant to a peer that never
		// reads it, say — would outlive the drain and wedge wg.Wait, so
		// force-close whatever connections remain.
		s.closeAll()
	}()

	var wg sync.WaitGroup
	var acceptErr error
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() == nil {
				acceptErr = err
			}
			break
		}
		wrapped := s.wrap(conn)
		if !s.track(wrapped) {
			_ = wrapped.Close() // shutdown won the race with this accept
			continue
		}
		s.met.connsAccepted.Add(1)
		s.met.connsActive.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer s.met.connsActive.Add(-1)
			defer s.untrack(wrapped)
			s.handle(sessCtx, wrapped)
		}()
	}
	wg.Wait()
	close(handlersDone)
	<-watcherDone
	return acceptErr
}

// ServeTLS is Serve over TLS with an explicit config — shorthand for
// WithTLSConfig at serve time. cfg must carry a server certificate.
func (s *Server) ServeTLS(ctx context.Context, ln net.Listener, cfg *tls.Config) error {
	if cfg == nil {
		return fmt.Errorf("arm2gc: ServeTLS: nil TLS config")
	}
	s.tls = cfg
	return s.Serve(ctx, ln)
}

// wrap layers the wire-byte counters and, when configured, TLS over an
// accepted connection. The counters sit under TLS, so BytesRead/Written
// report genuine wire traffic (ciphertext), not plaintext. (When the
// listener itself already produced *tls.Conn, the counter necessarily
// sits above it and counts plaintext instead.)
func (s *Server) wrap(conn net.Conn) net.Conn {
	wrapped := net.Conn(&countedConn{Conn: conn, m: &s.met})
	if s.tls != nil {
		if _, already := conn.(*tls.Conn); !already {
			wrapped = tls.Server(wrapped, s.tls)
		}
	}
	return wrapped
}

// track adds a live connection to the shutdown set; it reports false once
// shutdown has started (the caller must close the connection itself).
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopping {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, conn)
}

// rejection is a proposal verdict that keeps the connection alive;
// program is set when the proposal named a registered program, for the
// per-program rejection counter.
type rejection struct {
	reason  string
	program string
}

func (r *rejection) Error() string { return "proposal rejected: " + r.reason }

// handle runs one connection's propose/grant/garble loop.
func (s *Server) handle(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	for {
		if !s.markIdle(conn) {
			return // shutting down
		}
		prop, err := proto.ReadProposal(conn)
		s.unmarkIdle(conn)
		if err != nil {
			var ve *proto.VersionError
			if errors.As(err, &ve) {
				// The frame was consumed, so the stream is still aligned:
				// tell the peer why and keep serving proposals this build
				// does understand.
				s.met.negotiationFailures.Add(1)
				if proto.WriteReject(conn, ve.Error()) != nil {
					return
				}
				continue
			}
			return // clean EOF, shutdown close, or a broken peer — this conn only
		}
		err = s.serveOne(ctx, conn, prop)
		var rej *rejection
		if errors.As(err, &rej) {
			s.met.rejected.Add(1)
			if rej.program != "" {
				s.met.program(rej.program).rejected.Add(1)
			}
			if proto.WriteReject(conn, rej.reason) != nil {
				return
			}
			continue // a rejected proposal does not cost the connection
		}
		if err != nil {
			s.met.failed.Add(1)
			s.logf("arm2gc: session %q from %v: %v", prop.Program, conn.RemoteAddr(), err)
			return // mid-protocol failure: the stream position is unknown
		}
	}
}

// peerOf assembles the authorization identity of a proposing connection.
func peerOf(conn net.Conn, token string) Peer {
	p := Peer{Addr: conn.RemoteAddr(), Token: token}
	// Two layerings reach here: WithTLSConfig puts tls.Server outermost
	// (over the byte counter); a listener that already produced *tls.Conn
	// ends up inside the counter instead — look through it.
	if cc, ok := conn.(*countedConn); ok {
		conn = cc.Conn
	}
	if tc, ok := conn.(*tls.Conn); ok {
		// The proposal has been read, so the handshake has completed and
		// the state — including any verified client chain — is final.
		st := tc.ConnectionState()
		p.TLS = &st
	}
	return p
}

// notAvailable is the uniform rejection for unknown programs and failed
// bearer-token checks: the two cases must be indistinguishable to the
// peer, or an unauthenticated client could enumerate the registered
// catalog by comparing rejection texts. (WithAuthorize callback errors
// are sent verbatim — what a policy reveals is the operator's choice.)
func notAvailable(program string) *rejection {
	return &rejection{reason: fmt.Sprintf("program %q is not available to this peer", program)}
}

// authorize applies the registration's admission policy to a proposal:
// the bearer-token check first, then the WithAuthorize callback. A nil
// error admits; anything else becomes a rejection upstream.
func (r *registration) authorize(peer Peer, program string) error {
	if r.cfg.authToken != "" &&
		subtle.ConstantTimeCompare([]byte(peer.Token), []byte(r.cfg.authToken)) != 1 {
		return notAvailable(program)
	}
	if r.cfg.authorize != nil {
		if err := r.cfg.authorize(peer, program); err != nil {
			return err
		}
	}
	return nil
}

// serveOne negotiates and garbles a single session.
func (s *Server) serveOne(ctx context.Context, conn net.Conn, prop proto.Proposal) error {
	s.mu.Lock()
	reg := s.regs[prop.Program]
	s.mu.Unlock()
	if reg == nil {
		// Same wording as a failed token check — see notAvailable.
		return notAvailable(prop.Program)
	}
	// Admission policy runs before option resolution, session lookup and
	// any cryptography: an unauthorized peer learns only the rejection.
	if err := reg.authorize(peerOf(conn, prop.Auth), prop.Program); err != nil {
		var rej *rejection
		if errors.As(err, &rej) {
			rej.program = prop.Program
			return rej
		}
		return &rejection{reason: err.Error(), program: prop.Program}
	}
	opts, grant, err := reg.resolve(prop)
	if err != nil {
		return err
	}
	sess, err := s.eng.Session(reg.prog, opts...)
	if err != nil {
		return err
	}
	if grant.SessionID, err = sess.sessionID(); err != nil {
		return err
	}
	if s.sem != nil {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	// Garble-ahead: dequeue a pre-garbled stream for the session id the
	// grant just pinned. A client that proposed non-default options lands
	// on a different id than the pool fills — a miss, served live. The
	// dequeue sits after the session slot is acquired so an entry is never
	// burned on a session that queues past shutdown.
	var rec *RecordedStream
	if s.pool != nil && reg.pooled {
		if rec = s.pool.Get(pool.Key(grant.SessionID)); rec != nil {
			s.met.poolHits.Add(1)
		} else {
			s.met.poolMisses.Add(1)
		}
	}
	if err := proto.WriteGrant(conn, grant); err != nil {
		return err
	}
	runCtx := ctx
	if s.timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	s.met.active.Add(1)
	// Deferred so the gauge cannot leak on any exit path — error returns
	// below and panics unwinding through the protocol stack alike.
	defer s.met.active.Add(-1)
	var info *RunInfo
	if rec != nil {
		info, err = sess.GarbleRecorded(runCtx, conn, rec)
	} else {
		info, err = sess.Garble(runCtx, conn, nil)
	}
	if err != nil {
		return err
	}
	s.met.served.Add(1)
	s.met.program(prop.Program).served.Add(1)
	s.met.tableFrames.Add(int64(info.TableFrames))
	s.met.cycles.Add(int64(info.Cycles))
	s.met.garbledTables.Add(int64(info.GarbledTables))
	return nil
}

// resolve checks a proposal against the registration and produces the
// resolved option set and grant. The output mode is pinned to the
// registered one, the cycle budget and worker count are capped by the
// registered ones (server CPU is operator policy), and the cycle batch is
// the client's choice within protocol bounds.
func (r *registration) resolve(prop proto.Proposal) ([]Option, proto.Grant, error) {
	grant := proto.Grant{
		Outputs:    r.cfg.outputs,
		CycleBatch: r.cfg.cycleBatch,
		MaxCycles:  r.cfg.maxCycles,
		Workers:    r.cfg.workers,
	}
	if prop.HasOutputs && prop.Outputs != r.cfg.outputs {
		return nil, grant, &rejection{program: prop.Program, reason: fmt.Sprintf(
			"output mode %v not offered (registered mode %v)", prop.Outputs, r.cfg.outputs)}
	}
	if prop.CycleBatch != 0 {
		if prop.CycleBatch < 1 || prop.CycleBatch > proto.MaxCycleBatch {
			return nil, grant, &rejection{program: prop.Program, reason: fmt.Sprintf("cycle batch %d out of range", prop.CycleBatch)}
		}
		grant.CycleBatch = prop.CycleBatch
	}
	if prop.MaxCycles != 0 {
		if prop.MaxCycles > r.cfg.maxCycles {
			return nil, grant, &rejection{program: prop.Program, reason: fmt.Sprintf(
				"cycle budget %d exceeds the registered limit %d", prop.MaxCycles, r.cfg.maxCycles)}
		}
		grant.MaxCycles = prop.MaxCycles
	}
	if prop.MemBackend != "" {
		// The memory backend shapes the netlist itself, so there is no
		// capping or splitting the difference: the client's resolved
		// backend either matches the registration's resolved one or the
		// proposal is rejected — cleanly, before any cryptography, with
		// the connection staying open for further proposals.
		registered, err := r.cfg.memory.Resolve(r.prog.Layout.DataWords())
		if err != nil {
			return nil, grant, &rejection{program: prop.Program, reason: fmt.Sprintf("memory backend: %v", err)}
		}
		if prop.MemBackend != registered {
			return nil, grant, &rejection{program: prop.Program, reason: fmt.Sprintf(
				"memory backend %q not offered (registered backend %q)", prop.MemBackend, registered)}
		}
	}
	if prop.Workers != 0 {
		if prop.Workers > proto.MaxWorkers {
			return nil, grant, &rejection{program: prop.Program, reason: fmt.Sprintf("worker count %d out of range", prop.Workers)}
		}
		if prop.Workers > r.cfg.workers {
			return nil, grant, &rejection{program: prop.Program, reason: fmt.Sprintf(
				"worker count %d exceeds the registered limit %d", prop.Workers, r.cfg.workers)}
		}
		grant.Workers = prop.Workers
	}
	opts := append(r.defaults[:len(r.defaults):len(r.defaults)],
		WithOutputMode(grant.Outputs),
		WithCycleBatch(grant.CycleBatch),
		WithMaxCycles(grant.MaxCycles),
		WithWorkers(grant.Workers))
	return opts, grant, nil
}

// markIdle records that conn is waiting for a proposal, the state in
// which shutdown may close it immediately; it reports false once shutdown
// has started.
func (s *Server) markIdle(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopping {
		return false
	}
	s.idle[conn] = struct{}{}
	return true
}

func (s *Server) unmarkIdle(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.idle, conn)
}

// closeIdle starts shutdown: no connection may go idle again, and every
// connection currently between sessions is closed.
func (s *Server) closeIdle() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stopping = true
	for conn := range s.idle {
		_ = conn.Close() // shutdown teardown; handlers report their own errors
	}
}

// closeAll is the shutdown backstop after the drain deadline: every
// connection still alive — whatever its handler is blocked on — is
// closed, so no handler goroutine can outlive Serve.
func (s *Server) closeAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stopping = true
	for conn := range s.conns {
		_ = conn.Close() // drain-deadline backstop; nothing left to report to
	}
}
