package arm2gc

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// serverMetrics is the Server's live counter set. Everything is atomic so
// the hot path never takes a lock; the per-program map is guarded by its
// own mutex and only grows (one entry per registered program).
type serverMetrics struct {
	served              atomic.Int64
	rejected            atomic.Int64
	failed              atomic.Int64
	active              atomic.Int64
	negotiationFailures atomic.Int64
	connsAccepted       atomic.Int64
	connsActive         atomic.Int64
	bytesRead           atomic.Int64
	bytesWritten        atomic.Int64
	tableFrames         atomic.Int64
	cycles              atomic.Int64
	garbledTables       atomic.Int64
	poolHits            atomic.Int64
	poolMisses          atomic.Int64

	mu       sync.Mutex
	programs map[string]*programCounters
}

// programCounters is one registered program's slice of the counters.
type programCounters struct {
	served   atomic.Int64
	rejected atomic.Int64
}

// program returns (creating on first use) a program's counter slot.
func (m *serverMetrics) program(name string) *programCounters {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.programs[name]
	if c == nil {
		c = &programCounters{}
		m.programs[name] = c
	}
	return c
}

// countedConn counts wire bytes through an accepted connection. It wraps
// the raw conn beneath any TLS layer, so the counters see ciphertext —
// what actually crossed the network. Embedding net.Conn preserves the
// deadline methods the protocol's context watcher needs.
type countedConn struct {
	net.Conn
	m *serverMetrics
}

func (c *countedConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.m.bytesRead.Add(int64(n))
	return n, err
}

func (c *countedConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.m.bytesWritten.Add(int64(n))
	return n, err
}

// ServerMetrics is a point-in-time snapshot of a Server's counters (see
// Server.Metrics). All fields are cumulative since the Server was created
// except the *Active gauges.
type ServerMetrics struct {
	// SessionsServed counts sessions that ran the protocol to completion.
	SessionsServed int64 `json:"sessions_served"`
	// SessionsRejected counts proposals declined by policy — unknown
	// program, authorization failure, or an option outside the
	// registration's bounds. The connection survives each one.
	SessionsRejected int64 `json:"sessions_rejected"`
	// SessionsFailed counts sessions that died mid-protocol (peer gone,
	// stream desynchronized); each costs its connection.
	SessionsFailed int64 `json:"sessions_failed"`
	// SessionsActive is the number of sessions garbling right now.
	SessionsActive int64 `json:"sessions_active"`
	// NegotiationFailures counts proposals that could not be negotiated at
	// the frame layer — currently version mismatches (a peer announcing
	// feature flags this build does not implement).
	NegotiationFailures int64 `json:"negotiation_failures"`
	// ConnectionsAccepted / ConnectionsActive count evaluator connections.
	ConnectionsAccepted int64 `json:"connections_accepted"`
	ConnectionsActive   int64 `json:"connections_active"`
	// BytesRead / BytesWritten are wire bytes through accepted
	// connections (ciphertext when serving TLS).
	BytesRead    int64 `json:"bytes_read"`
	BytesWritten int64 `json:"bytes_written"`
	// TableFrames counts garbled-table frames sent across all sessions.
	TableFrames int64 `json:"table_frames"`
	// Cycles and GarbledTables total the executed processor cycles and
	// transferred garbled tables — the paper's cost metric, summed over
	// every served session.
	Cycles        int64 `json:"cycles"`
	GarbledTables int64 `json:"garbled_tables"`
	// EngineBuilds is how many netlist syntheses the serving Engine has
	// performed; a warm multi-program server holds this at one per layout.
	EngineBuilds int64 `json:"engine_builds"`
	// Programs holds the per-registration counters, keyed by registered
	// name. Every registered program appears, even at zero.
	Programs map[string]ProgramMetrics `json:"programs"`
	// GarbleAhead reports the garble-ahead pool; nil unless the Server
	// was built WithGarbleAhead.
	GarbleAhead *GarbleAheadMetrics `json:"garble_ahead,omitempty"`
}

// GarbleAheadMetrics is the garble-ahead pool's slice of a Server
// metrics snapshot.
type GarbleAheadMetrics struct {
	// Hits counts sessions served from a pre-garbled stream; Misses
	// counts sessions of pooled programs that garbled live instead —
	// the pool was dry, or the client proposed non-default options.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Refills counts completed offline garbling passes; RefillNanos is
	// the producer time they took in total, so RefillNanos/Refills is
	// the mean refill latency.
	Refills        int64 `json:"refills"`
	RefillFailures int64 `json:"refill_failures"`
	RefillNanos    int64 `json:"refill_nanos"`
	// Evictions counts entries dropped for byte budgets; SpillLoadFails
	// counts spill files that would not load back (served live instead).
	Evictions      int64 `json:"evictions"`
	SpillLoadFails int64 `json:"spill_load_failures"`
	// MemBytes/SpillBytes/Ready gauge the pool's current contents.
	MemBytes   int64 `json:"mem_bytes"`
	SpillBytes int64 `json:"spill_bytes"`
	Ready      int   `json:"ready"`
	// Programs holds per-program pool state, keyed by registered name.
	Programs map[string]GarbleAheadProgram `json:"programs"`
}

// GarbleAheadProgram is one pooled program's depth and traffic. Its
// Hits/Misses count only default-option sessions (the streams the pool
// actually fills); the top-level counters include off-key sessions too.
type GarbleAheadProgram struct {
	Ready   int   `json:"ready"`
	Depth   int   `json:"depth"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Refills int64 `json:"refills"`
}

// ProgramMetrics is one registered program's session counters.
type ProgramMetrics struct {
	Served   int64 `json:"served"`
	Rejected int64 `json:"rejected"`
}

// Metrics snapshots the Server's counters. It is safe to call at any
// time, including while serving.
func (s *Server) Metrics() ServerMetrics {
	m := ServerMetrics{
		SessionsServed:      s.met.served.Load(),
		SessionsRejected:    s.met.rejected.Load(),
		SessionsFailed:      s.met.failed.Load(),
		SessionsActive:      s.met.active.Load(),
		NegotiationFailures: s.met.negotiationFailures.Load(),
		ConnectionsAccepted: s.met.connsAccepted.Load(),
		ConnectionsActive:   s.met.connsActive.Load(),
		BytesRead:           s.met.bytesRead.Load(),
		BytesWritten:        s.met.bytesWritten.Load(),
		TableFrames:         s.met.tableFrames.Load(),
		Cycles:              s.met.cycles.Load(),
		GarbledTables:       s.met.garbledTables.Load(),
		EngineBuilds:        s.eng.Builds(),
		Programs:            make(map[string]ProgramMetrics),
	}
	s.met.mu.Lock()
	for name, c := range s.met.programs {
		m.Programs[name] = ProgramMetrics{Served: c.served.Load(), Rejected: c.rejected.Load()}
	}
	s.met.mu.Unlock()
	if s.pool != nil {
		ps := s.pool.Stats()
		ga := &GarbleAheadMetrics{
			Hits:           s.met.poolHits.Load(),
			Misses:         s.met.poolMisses.Load(),
			Refills:        ps.Refills,
			RefillFailures: ps.Failures,
			RefillNanos:    ps.RefillTime.Nanoseconds(),
			Evictions:      ps.Evictions,
			SpillLoadFails: ps.LoadFails,
			MemBytes:       ps.MemBytes,
			SpillBytes:     ps.SpillBytes,
			Ready:          ps.Ready,
			Programs:       make(map[string]GarbleAheadProgram, len(ps.Programs)),
		}
		for name, p := range ps.Programs {
			ga.Programs[name] = GarbleAheadProgram{Ready: p.Ready, Depth: p.Depth,
				Hits: p.Hits, Misses: p.Misses, Refills: p.Refills}
		}
		m.GarbleAhead = ga
	}
	return m
}

// MetricsHandler returns an http.Handler exposing the Server's counters
// in the Prometheus text format (and as JSON with ?format=json). Mount it
// wherever the operator scrapes:
//
//	mux := http.NewServeMux()
//	mux.Handle("/metrics", srv.MetricsHandler())
//	go http.ListenAndServe(":9090", mux)
//
// The handler is scrape-only: it never touches the negotiation port and
// holds no locks across the garbling hot path.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m := s.Metrics()
		if r.URL.Query().Get("format") == "json" {
			// Marshal before writing: an encode failure becomes a clean
			// 500 instead of a truncated 200 the scraper would trust.
			b, err := json.MarshalIndent(m, "", "  ")
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(append(b, '\n')) // scraper gone mid-reply: nothing to report to
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeProm(w, m)
	})
}

// writeProm renders a snapshot in the Prometheus exposition format.
func writeProm(w http.ResponseWriter, m ServerMetrics) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("arm2gc_sessions_served_total", "Sessions that ran the protocol to completion.", m.SessionsServed)
	counter("arm2gc_sessions_rejected_total", "Proposals declined by policy; the connection survives.", m.SessionsRejected)
	counter("arm2gc_sessions_failed_total", "Sessions that died mid-protocol.", m.SessionsFailed)
	gauge("arm2gc_sessions_active", "Sessions garbling right now.", m.SessionsActive)
	counter("arm2gc_negotiation_failures_total", "Proposals unreadable at the frame layer (version mismatch).", m.NegotiationFailures)
	counter("arm2gc_connections_accepted_total", "Evaluator connections accepted.", m.ConnectionsAccepted)
	gauge("arm2gc_connections_active", "Evaluator connections currently open.", m.ConnectionsActive)
	counter("arm2gc_wire_read_bytes_total", "Wire bytes read from evaluator connections.", m.BytesRead)
	counter("arm2gc_wire_written_bytes_total", "Wire bytes written to evaluator connections.", m.BytesWritten)
	counter("arm2gc_table_frames_total", "Garbled-table frames sent.", m.TableFrames)
	counter("arm2gc_cycles_total", "Processor cycles executed across served sessions.", m.Cycles)
	counter("arm2gc_garbled_tables_total", "Garbled tables transferred across served sessions.", m.GarbledTables)
	counter("arm2gc_engine_builds_total", "Netlist syntheses performed by the serving Engine.", m.EngineBuilds)

	// %q escapes backslash, double quote and newline — the exact set the
	// Prometheus text format requires escaped in label values.
	names := make([]string, 0, len(m.Programs))
	for name := range m.Programs {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "# HELP arm2gc_program_sessions_served_total Sessions served, by registered program.\n")
	fmt.Fprintf(w, "# TYPE arm2gc_program_sessions_served_total counter\n")
	for _, name := range names {
		fmt.Fprintf(w, "arm2gc_program_sessions_served_total{program=%q} %d\n", name, m.Programs[name].Served)
	}
	fmt.Fprintf(w, "# HELP arm2gc_program_sessions_rejected_total Proposals rejected, by registered program.\n")
	fmt.Fprintf(w, "# TYPE arm2gc_program_sessions_rejected_total counter\n")
	for _, name := range names {
		fmt.Fprintf(w, "arm2gc_program_sessions_rejected_total{program=%q} %d\n", name, m.Programs[name].Rejected)
	}

	if ga := m.GarbleAhead; ga != nil {
		counter("arm2gc_pool_hits_total", "Sessions served from a pre-garbled stream.", ga.Hits)
		counter("arm2gc_pool_misses_total", "Pooled-program sessions that garbled live.", ga.Misses)
		counter("arm2gc_pool_refills_total", "Completed offline garbling passes.", ga.Refills)
		counter("arm2gc_pool_refill_failures_total", "Failed offline garbling passes.", ga.RefillFailures)
		counter("arm2gc_pool_refill_nanoseconds_total", "Producer time across refills; divide by refills for mean latency.", ga.RefillNanos)
		counter("arm2gc_pool_evictions_total", "Pool entries dropped for byte budgets.", ga.Evictions)
		counter("arm2gc_pool_spill_load_failures_total", "Spill files that would not load back.", ga.SpillLoadFails)
		gauge("arm2gc_pool_mem_bytes", "Pre-garbled bytes resident in memory.", ga.MemBytes)
		gauge("arm2gc_pool_spill_bytes", "Pre-garbled bytes spilled to disk.", ga.SpillBytes)
		gauge("arm2gc_pool_ready", "Ready pre-garbled streams across all programs.", int64(ga.Ready))
		pnames := make([]string, 0, len(ga.Programs))
		for name := range ga.Programs {
			pnames = append(pnames, name)
		}
		sort.Strings(pnames)
		fmt.Fprintf(w, "# HELP arm2gc_pool_program_ready Ready pre-garbled streams, by program.\n")
		fmt.Fprintf(w, "# TYPE arm2gc_pool_program_ready gauge\n")
		for _, name := range pnames {
			fmt.Fprintf(w, "arm2gc_pool_program_ready{program=%q} %d\n", name, ga.Programs[name].Ready)
		}
		fmt.Fprintf(w, "# HELP arm2gc_pool_program_depth Target pool depth, by program.\n")
		fmt.Fprintf(w, "# TYPE arm2gc_pool_program_depth gauge\n")
		for _, name := range pnames {
			fmt.Fprintf(w, "arm2gc_pool_program_depth{program=%q} %d\n", name, ga.Programs[name].Depth)
		}
	}
}
