package arm2gc

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// relaxSrc is a Dijkstra-class relaxation kernel: mostly gather loads at
// secret addresses over a 32-word array, with a few predicated scatter
// stores — the access pattern the square-root ORAM is built for, sized
// for a grid of full two-party runs under the race detector (the
// bencher's crossover tests carry the big arrays). The array is Alice's
// input region (region-aligned at word zero), so the secret addresses
// keep public high bits and the PC stays public.
const relaxSrc = `
void gc_main(int *a, const int *b, int *c) {
	unsigned acc = 0;
	for (int k = 0; k < 32; k = k + 1) {
		unsigned i = (b[k & 15] ^ k) & 31;
		unsigned v = a[i];
		acc = acc + v;
		if ((k & 7) == 0) {
			a[i] = acc ^ k;
		}
	}
	c[0] = acc;
	c[1] = a[(b[0] ^ 3) & 31];
}
`

func relaxLayout() Layout {
	return Layout{IMemWords: 64, AliceWords: 32, BobWords: 16, OutWords: 4, ScratchWords: 64}
}

func compileRelax(t testing.TB) *Program {
	t.Helper()
	prog, warnings, err := CompileC("relax", relaxSrc, relaxLayout())
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", warnings)
	}
	return prog
}

func relaxInputs() (alice, bob []uint32) {
	alice = make([]uint32, 32)
	bob = make([]uint32, 16)
	for i := range alice {
		alice[i] = uint32(i*2654435761 + 17)
	}
	for i := range bob {
		bob[i] = uint32(i*40499 + 3)
	}
	return alice, bob
}

// TestMemoryBackendEquivalenceGrid is the backend-equivalence suite: the
// same relaxation program, garbled two-party under the scan and the
// square-root ORAM across a workers × pipeline × cycle-batch grid, must
// decode identical outputs — equal to the native emulation — with equal
// cycle counts. The local knobs (workers, pipeline, read-ahead) must not
// perturb either backend's stream.
func TestMemoryBackendEquivalenceGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("twelve full two-party runs")
	}
	prog := compileRelax(t)
	alice, bob := relaxInputs()
	want, wantCycles, err := Emulate(prog, alice, bob, 100_000)
	if err != nil {
		t.Fatal(err)
	}

	eng := NewEngine()
	grid := []struct {
		workers, pipeline, batch int
	}{
		{1, 0, 1},
		{2, 2, 4},
		{4, 1, 8},
	}
	cycles := map[string]int{}
	for _, backend := range []string{MemoryScan, MemorySqrtORAM} {
		for _, g := range grid {
			name := fmt.Sprintf("%s/w%d-p%d-b%d", backend, g.workers, g.pipeline, g.batch)
			t.Run(name, func(t *testing.T) {
				common := []Option{
					WithMaxCycles(100_000),
					WithMemoryBackend(backend),
					WithCycleBatch(g.batch),
					WithWorkers(g.workers),
				}
				gs, err := eng.Session(prog, append(common, WithPipeline(g.pipeline))...)
				if err != nil {
					t.Fatal(err)
				}
				es, err := eng.Session(prog, append(common, WithReadAhead(g.pipeline))...)
				if err != nil {
					t.Fatal(err)
				}
				if got := gs.Machine().MemoryBackend(); got != backend {
					t.Fatalf("machine backend %q, want %q", got, backend)
				}
				ga, ev := runTwoParty(t, gs, es, alice, bob)
				for _, info := range []*RunInfo{ga, ev} {
					for i := range want {
						if info.Outputs[i] != want[i] {
							t.Fatalf("output[%d] = %#x, want %#x (native)", i, info.Outputs[i], want[i])
						}
					}
					if info.Cycles != wantCycles {
						t.Fatalf("ran %d cycles, native %d", info.Cycles, wantCycles)
					}
				}
				cycles[backend] = ga.Cycles
			})
		}
	}
	if cycles[MemoryScan] != 0 && cycles[MemoryScan] != cycles[MemorySqrtORAM] {
		t.Errorf("backends disagree on cycle count: scan %d, sqrt-oram %d",
			cycles[MemoryScan], cycles[MemorySqrtORAM])
	}
	// One machine per (layout, backend): three grid points per backend
	// share a netlist.
	if got := eng.Builds(); got != 2 {
		t.Errorf("grid performed %d netlist builds, want 2 (one per backend)", got)
	}
}

// TestMemoryBackendAutoSelection pins the auto rule end to end through
// the session API: below the threshold auto builds the scan, at 512+
// data words it builds the square-root ORAM, and an explicit matching
// name shares the auto-built machine.
func TestMemoryBackendAutoSelection(t *testing.T) {
	eng := NewEngine()
	small := compileAdd(t)                              // 20 data words
	s, err := eng.Session(small, WithMaxCycles(10_000)) // default: auto
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Machine().MemoryBackend(); got != MemoryScan {
		t.Errorf("auto over %d data words picked %q, want %q", small.Layout.DataWords(), got, MemoryScan)
	}

	big := relaxLayout()
	big.AliceWords = 512 // 596 data words ≥ the 512-word threshold
	bigProg, _, err := CompileC("relax-big", relaxSrc, big)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := eng.Session(bigProg, WithMaxCycles(10_000))
	if err != nil {
		t.Fatal(err)
	}
	if got := sb.Machine().MemoryBackend(); got != MemorySqrtORAM {
		t.Errorf("auto over %d data words picked %q, want %q", big.DataWords(), got, MemorySqrtORAM)
	}

	builds := eng.Builds()
	se, err := eng.Session(bigProg, WithMaxCycles(10_000), WithMemoryBackend(MemorySqrtORAM))
	if err != nil {
		t.Fatal(err)
	}
	if se.Machine().MemoryBackend() != MemorySqrtORAM || eng.Builds() != builds {
		t.Errorf("explicit %q did not share auto's machine (builds %d → %d)",
			MemorySqrtORAM, builds, eng.Builds())
	}

	if _, err := eng.Session(small, WithMemoryBackend("round-oram")); err == nil ||
		!strings.Contains(err.Error(), "unknown memory backend") {
		t.Errorf("bogus backend name: err = %v, want unknown-backend", err)
	}
}

// TestServerMemoryBackendMismatch: a client proposing a backend other
// than the registration's resolved one is rejected with a readable
// reason — and the connection survives for a matching session.
func TestServerMemoryBackendMismatch(t *testing.T) {
	prog := compileAdd(t)
	eng := NewEngine()
	srv := NewServer(eng)
	if err := srv.Register("add", prog,
		WithMaxCycles(10_000),
		WithMemoryBackend(MemoryScan),
		WithGarblerInput([]uint32{100})); err != nil {
		t.Fatal(err)
	}
	addr, shutdown := startServer(t, srv)
	defer shutdown()

	cl, err := Dial(context.Background(), addr, WithClientEngine(eng))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("add", prog); err != nil {
		t.Fatal(err)
	}

	_, err = cl.Evaluate(context.Background(), "add", []uint32{1}, WithMemoryBackend(MemorySqrtORAM))
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("mismatched backend: got %v, want *RejectedError", err)
	}
	if !strings.Contains(rej.Reason, "memory backend") || !strings.Contains(rej.Reason, MemoryScan) {
		t.Errorf("rejection reason %q does not name the backends", rej.Reason)
	}

	// Same connection, matching proposals: an explicit scan and an
	// auto that resolves to scan must both run.
	for _, backend := range []string{MemoryScan, MemoryAuto} {
		info, err := cl.Evaluate(context.Background(), "add", []uint32{1}, WithMemoryBackend(backend))
		if err != nil {
			t.Fatalf("matching session (%q) after rejection: %v", backend, err)
		}
		if info.Outputs[0] != 101 {
			t.Fatalf("sum = %d, want 101", info.Outputs[0])
		}
	}
}
