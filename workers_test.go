package arm2gc

import (
	"context"
	"errors"
	"net"
	"testing"
)

// TestWorkersCycleStatsExact guards the parallel CycleStats merge: per
// cycle and in total, an 8-worker run of a real program on the golden
// test-suite layout must produce exactly the statistics of the serial
// run, and the schedule-only Count must agree with the full crypto Run at
// every worker count (the counts are the paper's cost metric, so "almost
// equal" is a correctness bug, not noise).
func TestWorkersCycleStatsExact(t *testing.T) {
	prog, _, err := CompileC("add", addSrc, testLayout())
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine()
	collect := func(workers int) ([]CycleUpdate, *RunInfo) {
		var ups []CycleUpdate
		sess, err := eng.Session(prog, WithMaxCycles(10_000), WithWorkers(workers),
			WithStatsSink(func(u CycleUpdate) { ups = append(ups, u) }))
		if err != nil {
			t.Fatal(err)
		}
		info, err := sess.Run(context.Background(), []uint32{40}, []uint32{2})
		if err != nil {
			t.Fatal(err)
		}
		return ups, info
	}

	serialUps, serialInfo := collect(1)
	if serialInfo.Outputs[0] != 42 {
		t.Fatalf("serial outputs = %v", serialInfo.Outputs)
	}
	for _, workers := range []int{2, 8} {
		parUps, parInfo := collect(workers)
		if len(parUps) != len(serialUps) {
			t.Fatalf("workers %d: %d cycle updates, serial %d", workers, len(parUps), len(serialUps))
		}
		for i := range serialUps {
			if parUps[i] != serialUps[i] {
				t.Fatalf("workers %d: cycle %d stats %+v, serial %+v",
					workers, serialUps[i].Cycle, parUps[i].Stats, serialUps[i].Stats)
			}
		}
		if parInfo.GarbledTables != serialInfo.GarbledTables || parInfo.Cycles != serialInfo.Cycles {
			t.Fatalf("workers %d: %d tables/%d cycles, serial %d/%d",
				workers, parInfo.GarbledTables, parInfo.Cycles, serialInfo.GarbledTables, serialInfo.Cycles)
		}
		if parInfo.Outputs[0] != 42 || parInfo.Outputs[1] != 40 {
			t.Fatalf("workers %d: outputs = %v, want [42 40]", workers, parInfo.Outputs)
		}

		sess, err := eng.Session(prog, WithMaxCycles(10_000), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		count, err := sess.Count(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if count.GarbledTables != serialInfo.GarbledTables {
			t.Fatalf("workers %d: Count says %d tables, serial Run %d",
				workers, count.GarbledTables, serialInfo.GarbledTables)
		}
	}
}

// TestWorkersTwoParty runs a full networked session with both parties
// parallel and cross-checks the outputs against the serial session.
func TestWorkersTwoParty(t *testing.T) {
	prog, _, err := CompileC("add", addSrc, testLayout())
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine()
	run := func(workers int) (*RunInfo, *RunInfo) {
		gs, err := eng.Session(prog, WithMaxCycles(10_000), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		es, err := eng.Session(prog, WithMaxCycles(10_000), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		ca, cb := net.Pipe()
		defer ca.Close()
		defer cb.Close()
		type r struct {
			info *RunInfo
			err  error
		}
		ch := make(chan r, 1)
		go func() {
			info, err := gs.Garble(context.Background(), ca, []uint32{1000})
			ch <- r{info, err}
		}()
		bobInfo, err := es.Evaluate(context.Background(), cb, []uint32{23})
		if err != nil {
			t.Fatal(err)
		}
		ar := <-ch
		if ar.err != nil {
			t.Fatal(ar.err)
		}
		return ar.info, bobInfo
	}
	sa, sb := run(1)
	pa, pb := run(8)
	for i := range sa.Outputs {
		if pa.Outputs[i] != sa.Outputs[i] || pb.Outputs[i] != sb.Outputs[i] {
			t.Fatalf("output %d differs between serial and 8-worker sessions", i)
		}
	}
	if pa.GarbledTables != sa.GarbledTables {
		t.Fatalf("8-worker session garbled %d tables, serial %d", pa.GarbledTables, sa.GarbledTables)
	}
}

// TestWorkersNegotiation pins the server policy: a client may propose a
// worker count up to the registration's own, and anything above it is
// rejected without dropping the connection.
func TestWorkersNegotiation(t *testing.T) {
	prog, _, err := CompileC("add", addSrc, testLayout())
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine()
	srv := NewServer(eng)
	if err := srv.Register("add", prog, WithMaxCycles(10_000), WithWorkers(4)); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}()

	cli, err := Dial(context.Background(), ln.Addr().String(), WithClientEngine(eng))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Register("add", prog); err != nil {
		t.Fatal(err)
	}

	// Over the registered ceiling: rejected, connection survives.
	_, err = cli.Evaluate(context.Background(), "add", []uint32{2}, WithWorkers(8))
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("over-limit workers: got %v, want rejection", err)
	}

	// Within the ceiling: granted and the session runs.
	info, err := cli.Evaluate(context.Background(), "add", []uint32{2}, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if info.Outputs[0] != 2 {
		t.Fatalf("outputs = %v", info.Outputs)
	}
}
