/* xorshare: XOR of the two private words — a one-output second program
 * so the registry demonstrates multi-program hosting. */
void gc_main(const int *a, const int *b, int *c) {
	c[0] = a[0] ^ b[0];
}
