/* relax: a relaxation-pass kernel over a 512-word array — the access
 * pattern of a Dijkstra/Bellman-Ford distance pass, where most steps
 * only read the array and few update it. 512 words = 2KB of data
 * memory, at the square-root ORAM break-even: the registry pins
 * "memory_backend": "sqrt-oram" so the server's stash ring absorbs the
 * 16 scatter stores and never pays their bank write-backs. The array
 * is Alice's input region itself (region-aligned at word zero), which
 * keeps the secret addresses' high bits public and the scans confined
 * to the array. */
void gc_main(int *a, const int *b, int *c) {
	unsigned acc = 0;
	for (int k = 0; k < 256; k = k + 1) {
		unsigned i = (b[k & 63] ^ k) & 511;
		unsigned v = a[i];
		acc = acc + v;
		if ((k & 15) == 0) {
			a[i] = acc ^ k;
		}
	}
	c[0] = acc;
	c[1] = a[(b[0] ^ 3) & 511];
}
