/* addmax: the running two-output demo — sum and max of one word from
 * each party. Alice's word comes from the registry's garbler_input. */
void gc_main(const int *a, const int *b, int *c) {
	c[0] = a[0] + b[0];
	c[1] = a[0] > b[0] ? a[0] : b[0];
}
