// Two-party Hamming distance over TCP — the genomic-similarity style
// workload the GC literature uses (the paper cites genome matching as a
// motivating application). Alice and Bob each hold a 512-bit feature
// vector; they learn only the Hamming distance.
//
// This example runs both parties as real network peers on localhost: the
// garbler listens, the evaluator dials, and labels, oblivious transfers
// and garbled tables cross an actual TCP connection.
package main

import (
	"fmt"
	"log"
	"net"

	"arm2gc"
)

const src = `
unsigned popcount(unsigned x) {
	x = x - ((x >> 1) & 0x55555555);
	x = (x & 0x33333333) + ((x >> 2) & 0x33333333);
	x = (x + (x >> 4)) & 0x0F0F0F0F;
	x = x + (x >> 8);
	x = x + (x >> 16);
	return x & 0x3F;
}

void gc_main(const int *a, const int *b, int *c) {
	unsigned acc = 0;
	for (int i = 0; i < 16; i = i + 1) {
		acc = acc + popcount(a[i] ^ b[i]);
	}
	c[0] = acc;
}
`

func main() {
	prog, _, err := arm2gc.CompileC("hamming512", src, arm2gc.Layout{
		IMemWords: 128, AliceWords: 16, BobWords: 16, OutWords: 1, ScratchWords: 32,
	})
	if err != nil {
		log.Fatal(err)
	}

	alice := make([]uint32, 16)
	bob := make([]uint32, 16)
	for i := range alice {
		alice[i] = 0xfedcba98 ^ uint32(i*0x01010101)
		bob[i] = 0x89abcdef ^ uint32(i*0x10101010)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()

	type side struct {
		who  string
		dist uint32
		err  error
	}
	results := make(chan side, 2)

	const maxCycles = 10_000
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			results <- side{"alice", 0, err}
			return
		}
		defer conn.Close()
		m, err := arm2gc.NewMachine(prog.Layout)
		if err != nil {
			results <- side{"alice", 0, err}
			return
		}
		info, err := m.Garble(conn, prog, alice, maxCycles)
		if err != nil {
			results <- side{"alice", 0, err}
			return
		}
		results <- side{"alice (garbler)", info.Outputs[0], nil}
	}()
	go func() {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			results <- side{"bob", 0, err}
			return
		}
		defer conn.Close()
		m, err := arm2gc.NewMachine(prog.Layout)
		if err != nil {
			results <- side{"bob", 0, err}
			return
		}
		info, err := m.Evaluate(conn, prog, bob, maxCycles)
		if err != nil {
			results <- side{"bob", 0, err}
			return
		}
		results <- side{"bob (evaluator)", info.Outputs[0], nil}
	}()

	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			log.Fatalf("%s: %v", r.who, r.err)
		}
		fmt.Printf("%-16s learned Hamming distance = %d\n", r.who, r.dist)
	}
}
