// Two-party Hamming distance over TCP — the genomic-similarity style
// workload the GC literature uses (the paper cites genome matching as a
// motivating application). Alice and Bob each hold a 512-bit feature
// vector; they learn only the Hamming distance.
//
// This example runs both parties as real network peers on localhost: the
// garbler listens, the evaluator dials, and labels, oblivious transfers
// and garbled tables cross an actual TCP connection. Both parties draw
// their session from one shared Engine, so the ~29k-wire processor
// netlist is synthesized once, not twice — the serving pattern a real
// deployment uses per party. WithCycleBatch(16) packs sixteen cycles of
// garbled tables into each network frame, cutting framing round trips.
package main

import (
	"context"
	"fmt"
	"log"
	"net"

	"arm2gc"
)

const src = `
unsigned popcount(unsigned x) {
	x = x - ((x >> 1) & 0x55555555);
	x = (x & 0x33333333) + ((x >> 2) & 0x33333333);
	x = (x + (x >> 4)) & 0x0F0F0F0F;
	x = x + (x >> 8);
	x = x + (x >> 16);
	return x & 0x3F;
}

void gc_main(const int *a, const int *b, int *c) {
	unsigned acc = 0;
	for (int i = 0; i < 16; i = i + 1) {
		acc = acc + popcount(a[i] ^ b[i]);
	}
	c[0] = acc;
}
`

func main() {
	prog, _, err := arm2gc.CompileC("hamming512", src, arm2gc.Layout{
		IMemWords: 128, AliceWords: 16, BobWords: 16, OutWords: 1, ScratchWords: 32,
	})
	if err != nil {
		log.Fatal(err)
	}

	alice := make([]uint32, 16)
	bob := make([]uint32, 16)
	for i := range alice {
		alice[i] = 0xfedcba98 ^ uint32(i*0x01010101)
		bob[i] = 0x89abcdef ^ uint32(i*0x10101010)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()

	// One Engine for the whole process: both parties' sessions share the
	// cached machine for this layout.
	eng := arm2gc.NewEngine()
	opts := []arm2gc.Option{arm2gc.WithMaxCycles(10_000), arm2gc.WithCycleBatch(16)}
	ctx := context.Background()

	type side struct {
		who    string
		dist   uint32
		frames int
		err    error
	}
	results := make(chan side, 2)

	go func() {
		conn, err := ln.Accept()
		if err != nil {
			results <- side{who: "alice", err: err}
			return
		}
		defer conn.Close()
		sess, err := eng.Session(prog, opts...)
		if err != nil {
			results <- side{who: "alice", err: err}
			return
		}
		info, err := sess.Garble(ctx, conn, alice)
		if err != nil {
			results <- side{who: "alice", err: err}
			return
		}
		results <- side{who: "alice (garbler)", dist: info.Outputs[0], frames: info.TableFrames}
	}()
	go func() {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			results <- side{who: "bob", err: err}
			return
		}
		defer conn.Close()
		sess, err := eng.Session(prog, opts...)
		if err != nil {
			results <- side{who: "bob", err: err}
			return
		}
		info, err := sess.Evaluate(ctx, conn, bob)
		if err != nil {
			results <- side{who: "bob", err: err}
			return
		}
		results <- side{who: "bob (evaluator)", dist: info.Outputs[0], frames: info.TableFrames}
	}()

	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			log.Fatalf("%s: %v", r.who, r.err)
		}
		fmt.Printf("%-16s learned Hamming distance = %d (%d table frames)\n", r.who, r.dist, r.frames)
	}
	fmt.Printf("netlist builds: %d (one machine shared by both parties)\n", eng.Builds())
}
