// The hardened service in one process: a registry of two programs loaded
// from disk, served over TLS with per-program bearer-token authorization,
// a warmed garble-ahead pool (the registry's "garble_ahead" settings) and
// a Prometheus metrics endpoint; one client runs both programs over a
// single TLS connection, has an unauthorized proposal rejected without
// losing that connection, and the metrics report the exact counts —
// including that every session was served from a pre-garbled stream.
//
// The certificates are throwaway dev material minted in-process
// (internal/devcert, the same generator behind `make serve-tls`); a real
// deployment points -tls-cert/-tls-key/-tls-ca at operator-issued PEM
// files instead.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/httptest"

	"arm2gc"
	"arm2gc/internal/cli"
	"arm2gc/internal/devcert"
)

func main() {
	// The program registry lives on disk next to this file; in a real
	// deployment `arm2gc -role serve -registry ...` loads the same format.
	entries, err := cli.LoadRegistry("examples/registry/registry.json", arm2gc.Layout{
		IMemWords: 64, AliceWords: 1, BobWords: 1, OutWords: 2, ScratchWords: 16,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Throwaway TLS material: a CA, a server leaf, a client trust config.
	ca, err := devcert.NewCA("example CA")
	if err != nil {
		log.Fatal(err)
	}
	srvTLS, err := devcert.ServerConfig(ca, false)
	if err != nil {
		log.Fatal(err)
	}
	clTLS, err := devcert.ClientConfig(ca, "")
	if err != nil {
		log.Fatal(err)
	}

	eng := arm2gc.NewEngine()
	srv := arm2gc.NewServer(eng, arm2gc.WithTLSConfig(srvTLS), arm2gc.WithMaxSessions(4),
		arm2gc.WithGarbleAhead(arm2gc.PoolConfig{}))
	for _, e := range entries {
		if err := srv.Register(e.Name, e.Program, e.Options...); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("registered %q from the registry\n", e.Name)
	}

	// Warm the garble-ahead pool before taking traffic: the registry asks
	// for 2 ready streams of addmax and 1 of xorshare, so the very first
	// client session skips the garbling pass entirely.
	if err := srv.WarmGarbleAhead(context.Background()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("garble-ahead pool warmed: %d streams ready\n", srv.Metrics().GarbleAhead.Ready)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()

	// One TLS connection, both programs over it.
	cl, err := arm2gc.DialTLS(context.Background(), ln.Addr().String(), clTLS,
		arm2gc.WithClientEngine(eng))
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	for _, e := range entries {
		if err := cl.Register(e.Name, e.Program); err != nil {
			log.Fatal(err)
		}
	}

	// An unauthorized proposal: rejected by token policy, the connection
	// survives.
	_, err = cl.Evaluate(context.Background(), "addmax", []uint32{42},
		arm2gc.WithAuthToken("wrong-token"))
	var rej *arm2gc.RejectedError
	if !errors.As(err, &rej) {
		log.Fatalf("expected a rejection, got %v", err)
	}
	fmt.Printf("unauthorized proposal rejected: %s (connection kept)\n", rej.Reason)

	// Authorized sessions: both programs, same connection.
	info, err := cl.Evaluate(context.Background(), "addmax", []uint32{42},
		arm2gc.WithAuthToken("demo-token"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("addmax(1000, 42) over TLS: sum=%d max=%d (%d cycles, %d garbled tables)\n",
		info.Outputs[0], info.Outputs[1], info.Cycles, info.GarbledTables)
	info, err = cl.Evaluate(context.Background(), "xorshare", []uint32{0x0f},
		arm2gc.WithAuthToken("demo-token"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("xorshare(240, 15) over TLS: %#x\n", info.Outputs[0])

	_ = cl.Close()
	cancel()
	if err := <-served; err != nil {
		log.Fatal(err)
	}

	// The metrics a production scrape would read — here through the same
	// handler `arm2gc -role serve -metrics :9090` mounts at /metrics.
	m := srv.Metrics()
	fmt.Printf("metrics: served=%d rejected=%d bytes_out=%d table_frames=%d builds=%d\n",
		m.SessionsServed, m.SessionsRejected, m.BytesWritten, m.TableFrames, m.EngineBuilds)
	fmt.Printf("garble-ahead: hits=%d misses=%d refills=%d\n",
		m.GarbleAhead.Hits, m.GarbleAhead.Misses, m.GarbleAhead.Refills)
	rec := httptest.NewRecorder()
	srv.MetricsHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	fmt.Printf("scrape sample:\n%s", firstLines(rec.Body.String(), 3))
}

// firstLines trims a scrape body for display.
func firstLines(s string, n int) string {
	out, count := "", 0
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			count++
			if count == n {
				break
			}
		}
	}
	return out
}
