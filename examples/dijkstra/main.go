// Private shortest paths: two organizations hold XOR-shares of a road
// network's link costs (neither sees the real topology weights); they
// jointly compute the shortest distances from a depot without revealing
// the shares. This is the paper's Table 5 Dijkstra workload, run with the
// full cryptographic protocol in process. The per-cycle stats sink
// streams live SkipGate telemetry for the long run.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"arm2gc"
	"arm2gc/internal/bencher"
)

func main() {
	w := bencher.DijkstraWorkload(8)
	prog, warnings, err := w.Program()
	if err != nil {
		log.Fatal(err)
	}
	for _, warn := range warnings {
		// The only non-predicated branches in this program are the public
		// pointer-swap bookkeeping; secret data never reaches a branch.
		log.Printf("compiler note: %s", warn)
	}

	// Stream coarse progress while the ~100k-cycle run grinds.
	var garbled int
	sink := func(u arm2gc.CycleUpdate) {
		garbled += u.Stats.Garbled
		if u.Cycle%20_000 == 0 {
			fmt.Fprintf(os.Stderr, "  cycle %d: %d garbled tables so far\n", u.Cycle, garbled)
		}
	}

	info, err := arm2gc.DefaultEngine.Verify(context.Background(), prog, w.Alice, w.Bob,
		arm2gc.WithMaxCycles(5_000_000), arm2gc.WithStatsSink(sink))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("shortest distances from node 0 (8-node graph, 64 shared weights):")
	for i, d := range info.Outputs {
		fmt.Printf("  node %d: %d\n", i, d)
	}
	fmt.Printf("cost: %d garbled tables over %d cycles (conventional: %d, %.0fx saved)\n",
		info.GarbledTables, info.Cycles, info.Conventional,
		float64(info.Conventional)/float64(info.GarbledTables))
}
