// Private shortest paths: two organizations hold XOR-shares of a road
// network's link costs (neither sees the real topology weights); they
// jointly compute the shortest distances from a depot without revealing
// the shares. This is the paper's Table 5 Dijkstra workload, run with the
// full cryptographic protocol in process.
package main

import (
	"fmt"
	"log"

	"arm2gc"
	"arm2gc/internal/bencher"
)

func main() {
	w := bencher.DijkstraWorkload(8)
	prog, warnings, err := w.Program()
	if err != nil {
		log.Fatal(err)
	}
	for _, warn := range warnings {
		// The only non-predicated branches in this program are the public
		// pointer-swap bookkeeping; secret data never reaches a branch.
		log.Printf("compiler note: %s", warn)
	}

	info, err := arm2gc.Verify(prog, w.Alice, w.Bob, 5_000_000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("shortest distances from node 0 (8-node graph, 64 shared weights):")
	for i, d := range info.Outputs {
		fmt.Printf("  node %d: %d\n", i, d)
	}
	fmt.Printf("cost: %d garbled tables over %d cycles (conventional: %d, %.0fx saved)\n",
		info.GarbledTables, info.Cycles, info.Conventional,
		float64(info.Conventional)/float64(info.GarbledTables))
}
