// The fleet in one process: two TLS backend garblers behind one TLS
// gateway. A client dials the gateway exactly as it would a single
// server; the gateway consistent-hashes the program name so every "add"
// session lands on the same backend's warm garble-ahead pool. Then the
// demo turns the screws: the affinity backend is killed and the next
// session fails over to the survivor transparently (the failure happens
// before any session bytes reach the client, so the gateway just retries
// on the next ring node); the dead backend restarts and the health
// prober re-admits it; and the admin endpoint retires the program live —
// rejected at the gateway without costing a backend round trip — then
// re-registers it.
//
// A real deployment runs the same topology as three processes:
//
//	arm2gc -role serve   -listen :9001 -c add.c -program add ...
//	arm2gc -role serve   -listen :9002 -c add.c -program add ...
//	arm2gc -role gateway -listen :9000 -backends localhost:9001,localhost:9002 \
//	       -metrics :9090 -admin-token sesame
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"time"

	"arm2gc"
	"arm2gc/internal/devcert"
	"arm2gc/internal/gateway"
)

const addSrc = `
void gc_main(const int *a, const int *b, int *c) {
	c[0] = a[0] + b[0];
	c[1] = a[0] > b[0] ? a[0] : b[0];
}
`

// backendProc is one fleet member, restartable on its address the way a
// supervised process would be.
type backendProc struct {
	addr string
	srv  *arm2gc.Server
	stop func()
}

func main() {
	layout := arm2gc.Layout{IMemWords: 64, AliceWords: 1, BobWords: 1, OutWords: 2, ScratchWords: 16}
	prog, warnings, err := arm2gc.CompileC("add.c", addSrc, layout)
	if err != nil {
		log.Fatal(err)
	}
	if len(warnings) > 0 {
		log.Fatal(warnings)
	}

	// Throwaway TLS material for both hops: client→gateway and
	// gateway→backend. One CA signs everything.
	ca, err := devcert.NewCA("fleet CA")
	if err != nil {
		log.Fatal(err)
	}

	eng := arm2gc.NewEngine()
	start := func(addr string) backendProc {
		srvTLS, err := devcert.ServerConfig(ca, false)
		if err != nil {
			log.Fatal(err)
		}
		srv := arm2gc.NewServer(eng,
			arm2gc.WithTLSConfig(srvTLS),
			arm2gc.WithDrainTimeout(0), // the chaos step kills hard
			arm2gc.WithGarbleAhead(arm2gc.PoolConfig{}))
		if err := srv.Register("add", prog,
			arm2gc.WithMaxCycles(10_000),
			arm2gc.WithGarblerInput([]uint32{1000})); err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			log.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			if err := srv.Serve(ctx, ln); err != nil {
				log.Fatal(err)
			}
		}()
		return backendProc{addr: ln.Addr().String(), srv: srv, stop: func() { cancel(); <-done }}
	}
	b1 := start("127.0.0.1:0")
	b2 := start("127.0.0.1:0")
	fmt.Printf("backends up: %s, %s (TLS)\n", b1.addr, b2.addr)

	// The gateway: TLS on both hops, fast probes so the demo's eject and
	// re-admit are visible in seconds, and an allowlist restricted to the
	// one deployed program.
	gwTLS, err := devcert.ServerConfig(ca, false)
	if err != nil {
		log.Fatal(err)
	}
	backendTLS, err := devcert.ClientConfig(ca, "")
	if err != nil {
		log.Fatal(err)
	}
	g, err := gateway.New(gateway.Config{
		Backends:      []string{b1.addr, b2.addr},
		Programs:      []string{"add"},
		ProbeInterval: 100 * time.Millisecond,
		TLS:           gwTLS,
		BackendTLS:    backendTLS,
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	gln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	gctx, gcancel := context.WithCancel(context.Background())
	gdone := make(chan error, 1)
	go func() { gdone <- g.Serve(gctx, gln) }()
	fmt.Printf("gateway up: %s fronting 2 backends\n", gln.Addr())

	// The client sees one address and one TLS identity — the fleet behind
	// it is invisible.
	clTLS, err := devcert.ClientConfig(ca, "")
	if err != nil {
		log.Fatal(err)
	}
	cl, err := arm2gc.DialTLS(context.Background(), gln.Addr().String(), clTLS,
		arm2gc.WithClientEngine(eng))
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("add", prog); err != nil {
		log.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		info, err := cl.Evaluate(context.Background(), "add", []uint32{uint32(i)})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("session %d through the gateway: sum=%d max=%d\n", i+1, info.Outputs[0], info.Outputs[1])
	}
	// A session's tail (the outputs frame) is still crossing the relay
	// when Evaluate returns; wait for the backends to account all three
	// before reading the split — and before killing anything, so the kill
	// lands between sessions, not under one's tail.
	for served(b1.srv)+served(b2.srv) < 3 {
		time.Sleep(5 * time.Millisecond)
	}
	victim := &b1
	if served(b2.srv) > 0 {
		victim = &b2
	}
	fmt.Printf("consistent hashing pinned all %d sessions to %s\n", served(victim.srv), victim.addr)

	// Chaos: kill the affinity backend while idle. The next session's
	// relay fails before any bytes reach the client, so the gateway ejects
	// the corpse and retries on the survivor — the client never notices.
	victim.stop()
	info, err := cl.Evaluate(context.Background(), "add", []uint32{7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backend %s killed; session failed over transparently: sum=%d (ejections=%d)\n",
		victim.addr, info.Outputs[0], g.Metrics().Ejections)

	// The backend restarts on its address; the prober re-admits it.
	*victim = start(victim.addr)
	for g.Metrics().Readmissions == 0 {
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("backend %s restarted and re-admitted by the health prober\n", victim.addr)

	// Live ops: retire the program through the admin endpoint (the same
	// handler `-admin-token` mounts under /admin on the -metrics mux),
	// watch the gateway reject it locally, then re-register it.
	admin := g.AdminHandler("sesame")
	post := func(path string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, path, nil)
		req.Header.Set("Authorization", "Bearer sesame")
		rec := httptest.NewRecorder()
		admin.ServeHTTP(rec, req)
		return rec
	}
	if rec := post("/programs?op=retire&name=add"); rec.Code != http.StatusOK {
		log.Fatalf("retire: %d %s", rec.Code, rec.Body)
	}
	var rej *arm2gc.RejectedError
	if _, err := cl.Evaluate(context.Background(), "add", []uint32{1}); !errors.As(err, &rej) {
		log.Fatalf("retired program: got %v, want a rejection", err)
	}
	fmt.Printf("program retired live: %q (connection kept)\n", rej.Reason)
	if rec := post("/programs?op=register&name=add"); rec.Code != http.StatusOK {
		log.Fatalf("re-register: %d %s", rec.Code, rec.Body)
	}
	if _, err := cl.Evaluate(context.Background(), "add", []uint32{1}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("program re-registered live: sessions flow again")
	// Let the final session's tail land before shutting down, so the
	// closing metrics read clean.
	for served(victim.srv) < 1 {
		time.Sleep(5 * time.Millisecond)
	}

	_ = cl.Close()
	gcancel()
	if err := <-gdone; err != nil {
		log.Fatal(err)
	}
	b1.stop()
	b2.stop()

	m := g.Metrics()
	fmt.Printf("gateway metrics: proposals=%d rejected_local=%d ejections=%d readmissions=%d ring_moves=%d\n",
		m.Proposals, m.RejectedLocal, m.Ejections, m.Readmissions, m.RingMoves)
	for _, b := range m.Backends {
		fmt.Printf("  backend %s: healthy=%v routed=%d failed=%d\n", b.Addr, b.Healthy, b.Routed, b.Failed)
	}
}

// served reads one backend's session counter.
func served(srv *arm2gc.Server) int64 { return srv.Metrics().SessionsServed }
