// Sealed-bid second-price (Vickrey) auction. Alice and Bob each submit 8
// sealed bids (two bidding consortiums); the computation reveals only the
// winning side, the winning bidder's index, and the second-highest price
// — individual losing bids stay private.
//
// The scan is fully predicated (conditional moves only), so the program
// counter never depends on the bids and SkipGate keeps all control free.
package main

import (
	"context"
	"fmt"
	"log"

	"arm2gc"
)

const src = `
void gc_main(const int *a, const int *b, int *c) {
	unsigned best = 0;
	unsigned second = 0;
	int who = 0;
	int idx = 0;
	for (int i = 0; i < 8; i = i + 1) {
		unsigned bid = a[i];
		int hit = bid > best;
		second = hit ? best : (bid > second ? bid : second);
		best = hit ? bid : best;
		who = hit ? 1 : who;
		idx = hit ? i : idx;
	}
	for (int i = 0; i < 8; i = i + 1) {
		unsigned bid = b[i];
		int hit = bid > best;
		second = hit ? best : (bid > second ? bid : second);
		best = hit ? bid : best;
		who = hit ? 2 : who;
		idx = hit ? i : idx;
	}
	c[0] = who;
	c[1] = idx;
	c[2] = second;
}
`

func main() {
	prog, warnings, err := arm2gc.CompileC("auction", src, arm2gc.Layout{
		IMemWords: 128, AliceWords: 8, BobWords: 8, OutWords: 3, ScratchWords: 32,
	})
	if err != nil {
		log.Fatal(err)
	}
	if len(warnings) > 0 {
		log.Fatalf("auction must be branch-free, got warnings: %v", warnings)
	}

	aliceBids := []uint32{120, 410, 95, 333, 78, 501, 222, 64}
	bobBids := []uint32{90, 388, 505, 17, 444, 260, 71, 119}

	// Engine.Verify cross-checks the garbled run against native emulation
	// on a cached machine.
	info, err := arm2gc.DefaultEngine.Verify(context.Background(), prog, aliceBids, bobBids,
		arm2gc.WithMaxCycles(50_000))
	if err != nil {
		log.Fatal(err)
	}

	sides := []string{"nobody", "Alice's consortium", "Bob's consortium"}
	fmt.Printf("winner:        %s, bidder #%d\n", sides[info.Outputs[0]], info.Outputs[1])
	fmt.Printf("price to pay:  %d (second-highest bid)\n", info.Outputs[2])
	fmt.Printf("cost:          %d garbled tables over %d cycles (conventional: %d)\n",
		info.GarbledTables, info.Cycles, info.Conventional)
}
