// Quickstart: the millionaires' problem on the garbled processor.
//
// Alice and Bob each hold a net worth; they learn who is richer and
// nothing else. The comparison is written in plain C, compiled with the
// bundled MiniC compiler, and executed under the full garbled-circuit
// protocol (in process) through the Engine/Session API. The printed
// statistics show SkipGate at work: the processor evaluates thousands of
// gates per cycle, but only the ~130 that touch the private values cost
// any communication.
package main

import (
	"context"
	"fmt"
	"log"

	"arm2gc"
)

const src = `
void gc_main(const int *a, const int *b, int *c) {
	unsigned alice = a[0];
	unsigned bob = b[0];
	c[0] = alice > bob ? 1 : (bob > alice ? 2 : 0);
}
`

func main() {
	prog, warnings, err := arm2gc.CompileC("millionaires", src, arm2gc.Layout{
		IMemWords: 64, AliceWords: 1, BobWords: 1, OutWords: 1, ScratchWords: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range warnings {
		log.Printf("warning: %s", w)
	}

	alice := []uint32{1_500_000}
	bob := []uint32{2_750_000}

	eng := arm2gc.NewEngine()
	sess, err := eng.Session(prog, arm2gc.WithMaxCycles(10_000))
	if err != nil {
		log.Fatal(err)
	}
	info, err := sess.Run(context.Background(), alice, bob)
	if err != nil {
		log.Fatal(err)
	}

	switch info.Outputs[0] {
	case 1:
		fmt.Println("Alice is richer.")
	case 2:
		fmt.Println("Bob is richer.")
	default:
		fmt.Println("They are equally rich.")
	}
	fmt.Printf("cycles: %d\n", info.Cycles)
	fmt.Printf("garbled tables (communication): %d\n", info.GarbledTables)
	fmt.Printf("without SkipGate it would be:   %d (%.0fx more)\n",
		info.Conventional, float64(info.Conventional)/float64(info.GarbledTables))
}
