// Running ARM2GC as a service: a garbling Server registers a program
// (with its own private input bound at registration), listens on TCP, and
// serves negotiated sessions to evaluator clients; a Client dials once
// and reuses the single connection for several sequential sessions, each
// opened by a propose/grant handshake instead of out-of-band agreement.
//
// The demo runs both parties in one process sharing one Engine, so the
// ~29k-wire processor netlist is synthesized exactly once — the server
// pays it at Register time and every session of every connection reuses
// it. A real deployment splits the two halves across machines: the server
// keeps running (`arm2gc -role serve`), clients come and go
// (`arm2gc -role client`).
package main

import (
	"context"
	"fmt"
	"log"
	"net"

	"arm2gc"
)

const src = `
void gc_main(const int *a, const int *b, int *c) {
	c[0] = a[0] + b[0];
	c[1] = a[0] > b[0] ? a[0] : b[0];
}
`

func main() {
	prog, _, err := arm2gc.CompileC("addmax", src, arm2gc.Layout{
		IMemWords: 64, AliceWords: 1, BobWords: 1, OutWords: 2, ScratchWords: 16,
	})
	if err != nil {
		log.Fatal(err)
	}

	eng := arm2gc.NewEngine()
	srv := arm2gc.NewServer(eng, arm2gc.WithMaxSessions(4), arm2gc.WithServerLog(log.Printf))
	// The registration fixes the server's policy: its private input, the
	// budget ceiling clients may request up to, and the default batching.
	if err := srv.Register("addmax", prog,
		arm2gc.WithGarblerInput([]uint32{1000}),
		arm2gc.WithMaxCycles(10_000),
		arm2gc.WithCycleBatch(8),
		arm2gc.WithPipeline(4)); err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()

	// One dialed connection, several sessions over it.
	cl, err := arm2gc.Dial(context.Background(), ln.Addr().String(), arm2gc.WithClientEngine(eng))
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("addmax", prog); err != nil {
		log.Fatal(err)
	}
	for _, bob := range []uint32{42, 999, 1001} {
		info, err := cl.Evaluate(context.Background(), "addmax", []uint32{bob})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("bob=%4d: sum=%4d max=%4d  (%d cycles, %d garbled tables)\n",
			bob, info.Outputs[0], info.Outputs[1], info.Cycles, info.GarbledTables)
	}

	cancel() // graceful shutdown: the idle connection closes, Serve returns
	if err := <-served; err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sessions served: %d over 1 connection; netlist builds: %d\n",
		srv.SessionsServed(), eng.Builds())
}
