package arm2gc

import (
	"bytes"
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"arm2gc/internal/proto"
)

// RejectedError is what Client.Evaluate returns when the Server declines
// a proposal (unknown program, an option the registration does not offer,
// an over-budget cycle count, or an authorization failure); check for it
// with errors.As. The connection survives a rejection, so the Client
// remains usable.
type RejectedError = proto.Rejected

// RetryableError is what Client.Evaluate returns when the peer sheds the
// proposal with a Retry-After hint — a fleet gateway refusing load, not a
// policy verdict. After is how long the peer asked this side to back off.
// It wraps the underlying *RejectedError, so errors.As works for both
// types; the connection survives a shed like any other rejection.
// WithRetry(n) makes Evaluate honor the hint itself before surfacing it.
type RetryableError struct {
	After time.Duration
	Err   error
}

func (e *RetryableError) Error() string {
	return fmt.Sprintf("%v (retry after %v)", e.Err, e.After)
}

func (e *RetryableError) Unwrap() error { return e.Err }

// retryDelay is the jittered backoff for one shed attempt: at least half
// the hint, at most 1.5× — spreading a thundering herd of shed clients
// without ignoring the peer's ask.
func retryDelay(after time.Duration) time.Duration {
	//lint:ignore cryptohygiene backoff jitter is not secret material; math/rand spreads the herd fine
	return after/2 + rand.N(after)
}

// sleepCtx sleeps d, returning early with ctx's error when cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Client is the evaluator side of the two-party API as a service client:
// it holds one connection to a Server and runs any number of sequential
// sessions over it, negotiating each with a propose/grant handshake. The
// program is the public input both parties must know, so the Client
// registers its own copy of every program it evaluates; the negotiation
// cross-checks the session id, turning any program-binary or layout
// disagreement into a clear error before the run starts.
//
// A Client is safe for concurrent use; sessions serialize on the
// connection, and a waiter's context is honored while it queues — a
// cancelled Evaluate never blocks behind another session. After a
// mid-protocol failure the connection state is unknown, so the Client
// marks itself broken and every later call returns the original error —
// dial a fresh Client to continue.
type Client struct {
	conn io.ReadWriter
	eng  *Engine

	// tlsCfg is consumed by Dial before the connection exists; see
	// WithDialTLS.
	tlsCfg *tls.Config

	// sem serializes sessions on the connection. A channel rather than a
	// mutex so a queued Evaluate can abandon the wait when its context
	// ends (the mutex guards only the fast-changing fields below).
	sem chan struct{}

	mu     sync.Mutex
	progs  map[string]*Program
	broken error
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithClientEngine sets the Engine the Client draws machines from
// (default DefaultEngine). A process playing both roles should pass the
// Server's Engine so both share one cached netlist per layout.
func WithClientEngine(eng *Engine) ClientOption {
	return func(c *Client) {
		if eng != nil {
			c.eng = eng
		}
	}
}

// WithDialTLS makes Dial wrap the TCP connection in TLS with cfg before
// any protocol byte flows (default: plaintext). A nil ServerName is
// filled in from the dialed address, so a config as small as
// &tls.Config{RootCAs: pool} works; add a Certificates entry for mutual
// TLS. The option only affects Dial — NewClient wraps whatever
// connection it is handed.
func WithDialTLS(cfg *tls.Config) ClientOption {
	return func(c *Client) { c.tlsCfg = cfg }
}

// NewClient wraps an established connection to a Server. The Client owns
// conn: Close closes it when it implements io.Closer.
func NewClient(conn io.ReadWriter, opts ...ClientOption) *Client {
	c := &Client{conn: conn, eng: DefaultEngine, progs: make(map[string]*Program),
		sem: make(chan struct{}, 1)}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Dial connects to a Server over TCP — TLS when WithDialTLS is given —
// and wraps the connection in a Client. Cancelling ctx aborts the dial
// and the TLS handshake.
func Dial(ctx context.Context, addr string, opts ...ClientOption) (*Client, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c := NewClient(nil, opts...)
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if c.tlsCfg != nil {
		cfg := c.tlsCfg.Clone()
		if cfg.ServerName == "" && !cfg.InsecureSkipVerify {
			host, _, err := net.SplitHostPort(addr)
			if err != nil {
				host = addr
			}
			cfg.ServerName = host
		}
		tconn := tls.Client(conn, cfg)
		if err := tconn.HandshakeContext(ctx); err != nil {
			_ = conn.Close()
			return nil, fmt.Errorf("arm2gc: TLS handshake with %s: %w", addr, err)
		}
		conn = tconn
	}
	c.conn = conn
	return c, nil
}

// DialTLS is Dial with an explicit TLS config — shorthand for
// WithDialTLS. A nil cfg is an error, not a silent plaintext fallback.
func DialTLS(ctx context.Context, addr string, cfg *tls.Config, opts ...ClientOption) (*Client, error) {
	if cfg == nil {
		return nil, fmt.Errorf("arm2gc: DialTLS: nil TLS config")
	}
	return Dial(ctx, addr, append(opts[:len(opts):len(opts)], WithDialTLS(cfg))...)
}

// Register binds the Client's copy of a program to the name it will
// propose under (empty name means p.Name). The binary must match the
// Server's registration bit for bit — the negotiated session id catches
// any divergence.
func (c *Client) Register(name string, p *Program) error {
	if p == nil {
		return fmt.Errorf("arm2gc: Register: nil program")
	}
	if name == "" {
		name = p.Name
	}
	if name == "" {
		return fmt.Errorf("arm2gc: Register: program has no name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.progs[name]; dup {
		return fmt.Errorf("arm2gc: Register: program %q already registered", name)
	}
	c.progs[name] = p
	return nil
}

// acquire takes the connection for one session, honoring ctx while
// queued behind another session.
func (c *Client) acquire(ctx context.Context) error {
	select {
	case c.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *Client) release() { <-c.sem }

// Evaluate negotiates and runs one session over the Client's connection:
// it proposes the named program with the explicitly set options
// (WithOutputMode, WithCycleBatch, WithMaxCycles, WithWorkers,
// WithMemoryBackend, plus any WithAuthToken bearer token; unset ones take
// the Server's registered defaults), verifies the granted session id
// against its own program
// copy, and plays the evaluator role contributing the bob input words. It
// returns the server's rejection as *RejectedError, after which the
// connection remains usable for further sessions. Cancelling ctx aborts
// the call at any point — queued behind another session, mid-handshake,
// or mid-run.
func (c *Client) Evaluate(ctx context.Context, name string, bob []uint32, opts ...Option) (*RunInfo, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := c.acquire(ctx); err != nil {
		return nil, err
	}
	defer c.release()
	c.mu.Lock()
	broken, prog := c.broken, c.progs[name]
	c.mu.Unlock()
	if broken != nil {
		return nil, fmt.Errorf("arm2gc: client connection is broken: %w", broken)
	}
	if prog == nil {
		return nil, fmt.Errorf("arm2gc: program %q not registered on this client", name)
	}
	cfg, err := newSessionConfig(opts)
	if err != nil {
		return nil, err
	}
	prop := proto.Proposal{Program: name, Auth: cfg.authToken}
	if cfg.outputsSet {
		prop.HasOutputs = true
		prop.Outputs = cfg.outputs
	}
	if cfg.cycleBatchSet {
		prop.CycleBatch = cfg.cycleBatch
	}
	if cfg.maxCyclesSet {
		prop.MaxCycles = cfg.maxCycles
	}
	if cfg.workersSet {
		prop.Workers = cfg.workers
	}
	if cfg.memorySet {
		// Propose the backend resolved against this side's layout, never
		// "auto": both parties must synthesize the same netlist, so the
		// wire carries the concrete name the session will actually build.
		backend, rerr := cfg.memory.Resolve(prog.Layout.DataWords())
		if rerr != nil {
			return nil, rerr
		}
		prop.MemBackend = backend
	}
	var grant proto.Grant
	for attempt := 0; ; attempt++ {
		grant, err = proto.Negotiate(ctx, c.conn, prop)
		if err == nil {
			break
		}
		var rej *RejectedError
		if !errors.As(err, &rej) {
			return nil, c.fail(err)
		}
		// The connection survives a rejection. A Retry-After hint marks
		// it as a transient shed: surface it typed, and — WithRetry —
		// re-propose after a jittered backoff. Retries live entirely
		// here, before any cryptographic material has flowed; once the
		// session runs, no failure is ever replayed.
		if rej.RetryAfter <= 0 {
			return nil, err
		}
		if attempt >= cfg.retries {
			return nil, &RetryableError{After: rej.RetryAfter, Err: err}
		}
		if serr := sleepCtx(ctx, retryDelay(rej.RetryAfter)); serr != nil {
			return nil, serr
		}
	}
	resolved := append(opts[:len(opts):len(opts)],
		WithOutputMode(grant.Outputs),
		WithCycleBatch(grant.CycleBatch),
		WithMaxCycles(grant.MaxCycles))
	if cfg.workersSet {
		// Workers stay a local compute knob: adopt the (capped) granted
		// count only when this client asked for parallelism — the
		// server's registered default is its own garbling policy, not a
		// directive for this side's CPU.
		resolved = append(resolved, WithWorkers(grant.Workers))
	}
	sess, err := c.eng.Session(prog, resolved...)
	if err != nil {
		return nil, c.fail(err) // the server expects a session this side won't run
	}
	sid, err := sess.sessionID()
	if err != nil {
		return nil, c.fail(err)
	}
	if !bytes.Equal(sid[:], grant.SessionID[:]) {
		return nil, c.fail(fmt.Errorf("arm2gc: session id mismatch for %q: this client's program binary or layout differs from the server's registration", name))
	}
	info, err := sess.Evaluate(ctx, c.conn, bob)
	if err != nil {
		return nil, c.fail(err)
	}
	return info, nil
}

// fail latches err as the Client's terminal state and closes the
// connection, so the server's handler — possibly already granted and
// waiting for a session this side will never run — unblocks instead of
// pinning a goroutine (and a WithMaxSessions slot) on a dead peer.
func (c *Client) fail(err error) error {
	c.mu.Lock()
	c.broken = err
	c.mu.Unlock()
	if cl, ok := c.conn.(io.Closer); ok {
		_ = cl.Close() // the conn is already condemned; its close error adds nothing
	}
	return err
}

// Close closes the underlying connection when it supports closing; the
// server sees a clean end-of-connection at its next proposal read.
func (c *Client) Close() error {
	if cl, ok := c.conn.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}
