package arm2gc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"arm2gc/internal/proto"
)

// RejectedError is what Client.Evaluate returns when the Server declines
// a proposal (unknown program, an option the registration does not offer,
// an over-budget cycle count); check for it with errors.As. The
// connection survives a rejection, so the Client remains usable.
type RejectedError = proto.Rejected

// Client is the evaluator side of the two-party API as a service client:
// it holds one connection to a Server and runs any number of sequential
// sessions over it, negotiating each with a propose/grant handshake. The
// program is the public input both parties must know, so the Client
// registers its own copy of every program it evaluates; the negotiation
// cross-checks the session id, turning any program-binary or layout
// disagreement into a clear error before the run starts.
//
// A Client is safe for concurrent use; sessions serialize on the
// connection. After a mid-protocol failure the connection state is
// unknown, so the Client marks itself broken and every later call returns
// the original error — dial a fresh Client to continue.
type Client struct {
	conn io.ReadWriter
	eng  *Engine

	mu     sync.Mutex
	progs  map[string]*Program
	broken error
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithClientEngine sets the Engine the Client draws machines from
// (default DefaultEngine). A process playing both roles should pass the
// Server's Engine so both share one cached netlist per layout.
func WithClientEngine(eng *Engine) ClientOption {
	return func(c *Client) {
		if eng != nil {
			c.eng = eng
		}
	}
}

// NewClient wraps an established connection to a Server. The Client owns
// conn: Close closes it when it implements io.Closer.
func NewClient(conn io.ReadWriter, opts ...ClientOption) *Client {
	c := &Client{conn: conn, eng: DefaultEngine, progs: make(map[string]*Program)}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Dial connects to a Server over TCP and wraps the connection in a
// Client. Cancelling ctx aborts the dial.
func Dial(ctx context.Context, addr string, opts ...ClientOption) (*Client, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn, opts...), nil
}

// Register binds the Client's copy of a program to the name it will
// propose under (empty name means p.Name). The binary must match the
// Server's registration bit for bit — the negotiated session id catches
// any divergence.
func (c *Client) Register(name string, p *Program) error {
	if p == nil {
		return fmt.Errorf("arm2gc: Register: nil program")
	}
	if name == "" {
		name = p.Name
	}
	if name == "" {
		return fmt.Errorf("arm2gc: Register: program has no name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.progs[name]; dup {
		return fmt.Errorf("arm2gc: Register: program %q already registered", name)
	}
	c.progs[name] = p
	return nil
}

// Evaluate negotiates and runs one session over the Client's connection:
// it proposes the named program with the explicitly set options
// (WithOutputMode, WithCycleBatch, WithMaxCycles, WithWorkers; unset ones
// take the Server's registered defaults), verifies the granted session id against
// its own program copy, and plays the evaluator role contributing the bob
// input words. It returns the server's rejection as *RejectedError, after
// which the connection remains usable for further sessions.
func (c *Client) Evaluate(ctx context.Context, name string, bob []uint32, opts ...Option) (*RunInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken != nil {
		return nil, fmt.Errorf("arm2gc: client connection is broken: %w", c.broken)
	}
	prog := c.progs[name]
	if prog == nil {
		return nil, fmt.Errorf("arm2gc: program %q not registered on this client", name)
	}
	cfg, err := newSessionConfig(opts)
	if err != nil {
		return nil, err
	}
	prop := proto.Proposal{Program: name}
	if cfg.outputsSet {
		prop.HasOutputs = true
		prop.Outputs = cfg.outputs
	}
	if cfg.cycleBatchSet {
		prop.CycleBatch = cfg.cycleBatch
	}
	if cfg.maxCyclesSet {
		prop.MaxCycles = cfg.maxCycles
	}
	if cfg.workersSet {
		prop.Workers = cfg.workers
	}
	grant, err := proto.Negotiate(ctx, c.conn, prop)
	if err != nil {
		var rej *RejectedError
		if errors.As(err, &rej) {
			return nil, err // the connection survives a rejection
		}
		return nil, c.fail(err)
	}
	resolved := append(opts[:len(opts):len(opts)],
		WithOutputMode(grant.Outputs),
		WithCycleBatch(grant.CycleBatch),
		WithMaxCycles(grant.MaxCycles))
	if cfg.workersSet {
		// Workers stay a local compute knob: adopt the (capped) granted
		// count only when this client asked for parallelism — the
		// server's registered default is its own garbling policy, not a
		// directive for this side's CPU.
		resolved = append(resolved, WithWorkers(grant.Workers))
	}
	sess, err := c.eng.Session(prog, resolved...)
	if err != nil {
		return nil, c.fail(err) // the server expects a session this side won't run
	}
	sid, err := sess.sessionID()
	if err != nil {
		return nil, c.fail(err)
	}
	if !bytes.Equal(sid[:], grant.SessionID[:]) {
		return nil, c.fail(fmt.Errorf("arm2gc: session id mismatch for %q: this client's program binary or layout differs from the server's registration", name))
	}
	info, err := sess.Evaluate(ctx, c.conn, bob)
	if err != nil {
		return nil, c.fail(err)
	}
	return info, nil
}

// fail latches err as the Client's terminal state and closes the
// connection, so the server's handler — possibly already granted and
// waiting for a session this side will never run — unblocks instead of
// pinning a goroutine (and a WithMaxSessions slot) on a dead peer.
func (c *Client) fail(err error) error {
	c.broken = err
	if cl, ok := c.conn.(io.Closer); ok {
		cl.Close()
	}
	return err
}

// Close closes the underlying connection when it supports closing; the
// server sees a clean end-of-connection at its next proposal read.
func (c *Client) Close() error {
	if cl, ok := c.conn.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}
